#include "ckpt/staging.hpp"

#include <algorithm>

#include "mpi/machine.hpp"
#include "util/assert.hpp"

namespace spbc::ckpt {

void StagingArea::attach(mpi::Machine& machine) {
  machine_ = &machine;
  const int nodes = machine.topology().nodes();
  node_storage_gen_.assign(static_cast<size_t>(nodes), 0);
  node_down_.assign(static_cast<size_t>(nodes), false);
  node_local_q_.assign(static_cast<size_t>(nodes), {});
  node_pfs_q_.assign(static_cast<size_t>(nodes), {});
  pfs_frontier_.assign(static_cast<size_t>(machine.nranks()), 0);
  partner_.assign(static_cast<size_t>(machine.nranks()), -2);
}

int StagingArea::partner_of(int rank) const {
  SPBC_ASSERT(machine_ != nullptr);
  int& cached = partner_[static_cast<size_t>(rank)];
  if (cached != -2) return cached;
  const sim::Topology& topo = machine_->topology();
  const int nodes = topo.nodes();
  const int ppn = topo.ranks_per_node();
  const int home = topo.node_of(rank);
  const int slot = rank % ppn;
  int pick = -1;
  for (int off = 1; off < nodes; ++off) {
    const int cand = ((home + off) % nodes) * ppn + slot;
    if (machine_->cluster_of(cand) != machine_->cluster_of(rank)) {
      pick = cand;  // different failure domain: the preferred buddy
      break;
    }
    if (pick < 0) pick = cand;  // fallback: nearest distinct node
  }
  cached = pick;
  return pick;
}

uint64_t StagingArea::node_gen(int node) const {
  return node_storage_gen_[static_cast<size_t>(node)];
}

StagingArea::Entry* StagingArea::find(int rank, uint64_t epoch) {
  auto it = entries_.find({rank, epoch});
  return it == entries_.end() ? nullptr : &it->second;
}
const StagingArea::Entry* StagingArea::find(int rank, uint64_t epoch) const {
  auto it = entries_.find({rank, epoch});
  return it == entries_.end() ? nullptr : &it->second;
}

sim::Time StagingArea::write(int rank, uint64_t epoch, uint64_t bytes) {
  if (!enabled()) return 0.0;
  SPBC_ASSERT(machine_ != nullptr);
  const int node = machine_->topology().node_of(rank);
  const sim::Time now = machine_->engine().now();
  node_down_[static_cast<size_t>(node)] = false;  // a resident is writing again
  Entry& e = entries_[{rank, epoch}];
  e.bytes = bytes;

  if (!cfg_.async) {
    // Synchronous write at the configured level, charged in full to the
    // member's fiber (the pre-staging behavior). Local-device writes from
    // co-resident ranks serialize on the node's device; the PFS cost model
    // is already a per-process share.
    sim::Time cost = cfg_.model.write_time(cfg_.level, bytes);
    switch (cfg_.level) {
      case StorageLevel::kNone:
        break;
      case StorageLevel::kLocal:
        e.levels = kAtLocal;
        cost = node_local_q_[static_cast<size_t>(node)].reserve(now, cost) - now;
        break;
      case StorageLevel::kPartner: {
        // Same dead-store guard as the async promotion path: a partner copy
        // must not be recorded on a node whose storage died and has not been
        // re-initialized by a resident's write (invalidate_node dedups
        // repeat failures of a down node, so the stale copy would survive
        // the node's next death).
        const int partner = partner_of(rank);
        const bool partner_live =
            partner >= 0 &&
            !node_down_[static_cast<size_t>(machine_->topology().node_of(partner))];
        e.levels = static_cast<uint8_t>(kAtLocal | (partner_live ? kAtPartner : 0));
        cost = node_local_q_[static_cast<size_t>(node)].reserve(now, cost) - now;
        break;
      }
      case StorageLevel::kPfs:
        e.levels = kAtPfs;
        finish_pfs(rank, epoch);
        break;
    }
    return cost;
  }

  // Async: the fiber pays only the LOCAL write; the promotion chain starts
  // when that write completes.
  e.levels = kAtLocal;
  ++stats_.drains_started;
  sim::Time local = cfg_.model.write_time(StorageLevel::kLocal, bytes);
  sim::Time done = node_local_q_[static_cast<size_t>(node)].reserve(now, local);
  machine_->engine().at(done,
                        [this, rank, epoch] { start_partner_copy(rank, epoch); });
  return done - now;
}

void StagingArea::start_partner_copy(int rank, uint64_t epoch) {
  Entry* e = find(rank, epoch);
  if (e == nullptr || (e->levels & kAtLocal) == 0) {
    ++stats_.drains_aborted;  // rolled back or node died before the drain ran
    return;
  }
  const int partner = partner_of(rank);
  const int home = machine_->topology().node_of(rank);
  if (partner < 0) {
    // Single-node topology: no cross-failure-domain level; flush directly.
    start_pfs_flush(rank, epoch, home, kAtLocal);
    return;
  }
  const int pnode = machine_->topology().node_of(partner);
  if (node_down_[static_cast<size_t>(pnode)]) {
    // The buddy node's storage died and no resident has re-initialized it:
    // copies must not land on a dead store (invalidate_node dedups repeat
    // failures of a down node, so such a copy would survive a second death).
    // Skip the partner level and flush straight from LOCAL.
    start_pfs_flush(rank, epoch, home, kAtLocal);
    return;
  }
  // The copy rides the real network, so it shares the home node's NIC with
  // application traffic and arrives after genuine transfer time.
  const uint64_t pgen = node_gen(pnode);
  const uint64_t bytes = e->bytes;
  machine_->network().submit(
      net::Transfer{rank, partner, bytes}, [this, rank, epoch, pnode, pgen] {
        Entry* entry = find(rank, epoch);
        if (entry == nullptr) {
          ++stats_.drains_aborted;  // rolled back while the copy was in flight
          return;
        }
        if ((entry->levels & kAtLocal) == 0 || node_gen(pnode) != pgen) {
          // Source or destination died in flight: re-issue from whatever
          // level still holds a copy instead of abandoning the chain.
          retry_from_surviving(rank, epoch);
          return;
        }
        entry->levels |= kAtPartner;
        ++stats_.partner_copies;
        stats_.bytes_to_partner += entry->bytes;
        start_pfs_flush(rank, epoch, pnode, kAtPartner);
      });
}

void StagingArea::start_pfs_flush(int rank, uint64_t epoch, int from_node,
                                  uint8_t source_bit) {
  Entry* e = find(rank, epoch);
  if (e == nullptr) return;
  const sim::Time now = machine_->engine().now();
  const sim::Time cost = cfg_.model.write_time(StorageLevel::kPfs, e->bytes);
  const sim::Time done =
      node_pfs_q_[static_cast<size_t>(from_node)].reserve(now, cost);
  const uint64_t gen = node_gen(from_node);
  machine_->engine().at(done, [this, rank, epoch, from_node, gen, source_bit] {
    Entry* entry = find(rank, epoch);
    if (entry == nullptr) {
      ++stats_.drains_aborted;  // rolled back while the flush was queued
      return;
    }
    if ((entry->levels & source_bit) == 0 || node_gen(from_node) != gen) {
      // The flush's source copy died mid-write (e.g. the partner node was
      // lost): retry from the cheapest surviving level — usually the home
      // node's LOCAL copy, which also re-establishes partner redundancy.
      retry_from_surviving(rank, epoch);
      return;
    }
    entry->levels |= kAtPfs;
    ++stats_.pfs_flushes;
    stats_.bytes_to_pfs += entry->bytes;
    finish_pfs(rank, epoch);
  });
}

void StagingArea::retry_from_surviving(int rank, uint64_t epoch) {
  Entry* e = find(rank, epoch);
  if (e == nullptr || e->levels == 0) {
    ++stats_.drains_aborted;  // every copy is gone; the chain is truly lost
    return;
  }
  if (e->levels & kAtPfs) return;  // already durable; nothing to promote
  if (e->retries_left == 0) {
    // A copy survives (the snapshot stays recoverable from it) but the
    // promotion budget is spent: the chain stalls short of PFS.
    ++stats_.retries_exhausted;
    return;
  }
  --e->retries_left;
  ++stats_.hop_retries;
  if (e->levels & kAtLocal) {
    // Cheapest surviving copy: the home node's LOCAL write. Restart the
    // remaining chain there (partner copy first when the buddy node is in
    // service, else a direct PFS flush).
    start_partner_copy(rank, epoch);
    return;
  }
  // LOCAL is gone but a PARTNER copy survives on the buddy node: flush it.
  const int partner = partner_of(rank);
  SPBC_ASSERT(partner >= 0);
  start_pfs_flush(rank, epoch, machine_->topology().node_of(partner), kAtPartner);
}

void StagingArea::finish_pfs(int rank, uint64_t epoch) {
  uint64_t& frontier = pfs_frontier_[static_cast<size_t>(rank)];
  frontier = std::max(frontier, epoch);
}

uint8_t StagingArea::levels(int rank, uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  return e == nullptr ? 0 : e->levels;
}

std::optional<StorageLevel> StagingArea::best_level(int rank,
                                                    uint64_t epoch) const {
  const Entry* e = find(rank, epoch);
  if (e == nullptr) return std::nullopt;
  if (e->levels & kAtLocal) return StorageLevel::kLocal;
  if (e->levels & kAtPartner) return StorageLevel::kPartner;
  if (e->levels & kAtPfs) return StorageLevel::kPfs;
  return std::nullopt;
}

bool StagingArea::recoverable(int rank, uint64_t epoch) const {
  if (!enabled()) return true;
  return best_level(rank, epoch).has_value();
}

sim::Time StagingArea::read_cost(int rank, uint64_t epoch) const {
  if (!enabled()) return 0.0;
  const Entry* e = find(rank, epoch);
  auto level = best_level(rank, epoch);
  if (e == nullptr || !level) return 0.0;
  return cfg_.model.read_time(*level, e->bytes);
}

std::optional<StorageLevel> StagingArea::note_restore(int rank, uint64_t epoch) {
  auto level = best_level(rank, epoch);
  if (level) {
    ++stats_.restores_by_level[static_cast<size_t>(*level) -
                               static_cast<size_t>(StorageLevel::kLocal)];
  }
  return level;
}

uint64_t StagingArea::pfs_frontier(int rank) const {
  if (pfs_frontier_.empty()) return 0;
  return pfs_frontier_[static_cast<size_t>(rank)];
}

void StagingArea::invalidate_node(int node) {
  if (!enabled()) return;
  // A cluster failure kills every rank of a node back-to-back; only the
  // first kill does the work. The flag is cleared when a respawned resident
  // writes again (the node is back in service with empty storage).
  if (node_down_[static_cast<size_t>(node)]) return;
  node_down_[static_cast<size_t>(node)] = true;
  ++node_storage_gen_[static_cast<size_t>(node)];
  const sim::Topology& topo = machine_->topology();
  for (auto& [key, e] : entries_) {
    if (topo.node_of(key.first) == node) e.levels &= static_cast<uint8_t>(~kAtLocal);
    const int partner = partner_of(key.first);
    if (partner >= 0 && topo.node_of(partner) == node)
      e.levels &= static_cast<uint8_t>(~kAtPartner);
  }
}

void StagingArea::drop_epochs_above(int rank, uint64_t epoch) {
  auto it = entries_.lower_bound({rank, epoch + 1});
  while (it != entries_.end() && it->first.first == rank)
    it = entries_.erase(it);
  // The frontier must not claim dropped epochs: commit uses it as the
  // retention floor, and a stale high frontier would let a re-executed
  // commit prune the real fallback epochs. Recompute it from the surviving
  // PFS-resident entries.
  if (!pfs_frontier_.empty() && pfs_frontier_[static_cast<size_t>(rank)] > epoch) {
    uint64_t frontier = 0;
    for (auto e = entries_.lower_bound({rank, 0});
         e != entries_.end() && e->first.first == rank; ++e) {
      if (e->second.levels & kAtPfs) frontier = e->first.second;
    }
    pfs_frontier_[static_cast<size_t>(rank)] = frontier;
  }
}

void StagingArea::prune_epochs_below(int rank, uint64_t epoch) {
  auto it = entries_.lower_bound({rank, 0});
  while (it != entries_.end() && it->first.first == rank &&
         it->first.second < epoch)
    it = entries_.erase(it);
}

}  // namespace spbc::ckpt

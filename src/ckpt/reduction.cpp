#include "ckpt/reduction.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace spbc::ckpt {

void fill_synth_block(unsigned char* dst, uint64_t len, uint64_t seed) {
  util::Pcg32 rng(seed, 0x9e3779b97f4a7c15ull);
  uint64_t pos = 0;
  while (pos < len) {
    // A constant run of 16..79 bytes, led by one noise byte: roughly the
    // entropy profile of field data between solver sweeps.
    uint64_t run = 16 + rng.next_bounded(64);
    if (run > len - pos) run = len - pos;
    const unsigned char noise = static_cast<unsigned char>(rng.next_u32());
    const unsigned char fill = static_cast<unsigned char>(rng.next_u32());
    dst[pos] = noise;
    for (uint64_t i = 1; i < run; ++i) dst[pos + i] = fill;
    pos += run;
  }
}

namespace {
uint64_t block_seed(const StateModelConfig& cfg, int rank, uint64_t epoch,
                    uint64_t block) {
  util::Fnv1a64 h;
  h.update_u64(cfg.seed);
  h.update_u64(static_cast<uint64_t>(rank));
  h.update_u64(epoch);
  h.update_u64(block);
  return h.digest();
}
}  // namespace

std::vector<unsigned char> make_state(const StateModelConfig& cfg, int rank) {
  std::vector<unsigned char> buf(cfg.bytes);
  if (cfg.bytes == 0) return buf;
  const uint32_t bb = cfg.block_bytes ? cfg.block_bytes : 4096;
  for (uint64_t off = 0; off < cfg.bytes; off += bb) {
    const uint64_t len = std::min<uint64_t>(bb, cfg.bytes - off);
    fill_synth_block(buf.data() + off, len, block_seed(cfg, rank, 0, off / bb));
  }
  return buf;
}

void evolve_state(std::vector<unsigned char>& buf, const StateModelConfig& cfg,
                  int rank, uint64_t epoch) {
  if (cfg.bytes == 0) return;
  const uint32_t bb = cfg.block_bytes ? cfg.block_bytes : 4096;
  const uint64_t nblocks = (cfg.bytes + bb - 1) / bb;
  uint64_t rewrites = static_cast<uint64_t>(
      std::llround(cfg.mutation_rate * static_cast<double>(nblocks)));
  if (rewrites < 1) rewrites = 1;
  if (rewrites > nblocks) rewrites = nblocks;
  // Block choice is keyed by (seed, rank, epoch) alone — independent of
  // execution history, so a re-executed epoch mutates identically.
  util::Pcg32 rng(cfg.seed ^ (static_cast<uint64_t>(rank) * 0x5851f42d4c957f2dull),
                  epoch);
  for (uint64_t i = 0; i < rewrites; ++i) {
    const uint64_t b = rng.next_bounded(static_cast<uint32_t>(nblocks));
    const uint64_t off = b * bb;
    const uint64_t len = std::min<uint64_t>(bb, cfg.bytes - off);
    fill_synth_block(buf.data() + off, len, block_seed(cfg, rank, epoch, b));
  }
}

std::vector<uint64_t> hash_blocks(const std::vector<unsigned char>& bytes,
                                  uint32_t block_bytes) {
  const uint32_t bb = block_bytes ? block_bytes : 4096;
  const uint64_t n = bytes.size();
  std::vector<uint64_t> hashes((n + bb - 1) / bb);
  for (size_t b = 0; b < hashes.size(); ++b) {
    const uint64_t off = static_cast<uint64_t>(b) * bb;
    const uint64_t len = std::min<uint64_t>(bb, n - off);
    util::Fnv1a64 h;
    h.update(bytes.data() + off, len);
    hashes[b] = h.digest();
  }
  return hashes;
}

}  // namespace spbc::ckpt

#pragma once
// Checkpoint data reduction: configuration and the synthetic state-evolution
// model that makes it measurable.
//
// Snapshot bytes are the currency of the whole LOCAL -> PARTNER -> PFS
// pipeline: every redundancy share, PFS flush, scrub probe and rebuild read
// pays them again, so shrinking the payload compounds through every level.
// Two reductions stack (both off by default — the raw path is bit-for-bit
// the pre-reduction pipeline):
//
//   * Content-addressed block deltas: a capture is split into fixed-size
//     blocks, each block FNV-hashed, and only blocks whose hash changed
//     since the previous epoch's capture are stored. Restore walks the
//     base-plus-deltas chain; a configurable full-capture stride bounds the
//     chain so retention (and restore reads) can't grow without bound.
//   * Stage-boundary compression: the deterministic LZ/RLE codec
//     (util/codec.hpp) runs once at LOCAL, and PARTNER copies, redundancy
//     shares and PFS flushes all ship the compressed bytes (SCR's
//     compress-once-at-cache discipline).
//
// The encoding lives in ckpt::Store (the blob owner); staging and the
// control plane only ever see post-reduction sizes. See DESIGN.md §15.

#include <cstdint>
#include <vector>

namespace spbc::ckpt {

struct ReductionConfig {
  /// Content-addressed block-level delta encoding between consecutive
  /// epochs. A capture whose predecessor (epoch - 1) is still stored and
  /// whose chain is shorter than `full_stride` stores only its changed
  /// blocks; everything else is a full capture.
  bool delta = false;
  /// Delta granularity: capture bytes are hashed and diffed in blocks of
  /// this size (the last block may be short).
  uint32_t block_bytes = 4096;
  /// Upper bound on chain length, full capture included: every
  /// `full_stride`-th epoch is a full capture even when deltas are small, so
  /// a restore never walks more than full_stride - 1 deltas and pruning can
  /// always converge to the PFS retention floor. 0 = unbounded (testing
  /// only); 1 = every capture full (deltas effectively off).
  uint64_t full_stride = 8;
  /// Compress the stored payload (full captures and delta payloads alike)
  /// with the deterministic LZ/RLE codec. Incompressible payloads are kept
  /// raw — the stored size never exceeds the unreduced size.
  bool compress = false;

  bool enabled() const { return delta || compress; }
};

/// Per-rank synthetic evolving application state, AMG/miniFE-style: a buffer
/// of `bytes` advanced at every checkpoint epoch by rewriting a
/// `mutation_rate` fraction of its `block_bytes` blocks with fresh
/// low-entropy content. Materialized into the snapshot stream (unlike
/// SpbcConfig::snapshot_pad_bytes, which is a pure size pad), so the
/// reduction layer sees real deltas and real compressibility. Evolution is
/// keyed by (seed, rank, epoch) only: re-executing an epoch after a rollback
/// regenerates the identical state, which keeps recovered checksums equal to
/// the failure-free run on any engine shard/thread layout.
struct StateModelConfig {
  uint64_t bytes = 0;  // 0 = model off
  uint32_t block_bytes = 4096;
  /// Fraction of blocks rewritten per epoch (>= 1 block once enabled).
  double mutation_rate = 0.10;
  uint64_t seed = 1;
};

/// Fills `dst[0..len)` with deterministic low-entropy content derived from
/// `seed`: constant runs of varying length with interspersed noise bytes —
/// compressible like relaxation-solver state, not like uniform noise.
void fill_synth_block(unsigned char* dst, uint64_t len, uint64_t seed);

/// The rank's epoch-0 state image.
std::vector<unsigned char> make_state(const StateModelConfig& cfg, int rank);

/// Advances `buf` from epoch - 1 to `epoch`: rewrites
/// round(mutation_rate * nblocks) (at least 1) blocks chosen by a
/// (seed, rank, epoch)-keyed PRNG. Pure in (cfg, rank, epoch, prior buf).
void evolve_state(std::vector<unsigned char>& buf, const StateModelConfig& cfg,
                  int rank, uint64_t epoch);

/// Per-block FNV-1a hashes of `bytes` at `block_bytes` granularity (the last
/// block hashes its real, possibly short, length — so a size change at the
/// tail reads as a changed block).
std::vector<uint64_t> hash_blocks(const std::vector<unsigned char>& bytes,
                                  uint32_t block_bytes);

}  // namespace spbc::ckpt

#pragma once
// Baseline configurations used across the evaluation.
//
// Three of the paper's comparison points are configurations rather than new
// protocols:
//   * native MPICH            -> mpi::NativeProtocol (no FT instrumentation)
//   * global coordinated ckpt -> SPBC with a single cluster (nothing is
//                                inter-cluster, so nothing is logged and a
//                                failure rolls everybody back)
//   * pure message logging    -> SPBC with one cluster per rank (Table 1's
//                                512-cluster row; every remote message is
//                                logged)

#include <memory>
#include <vector>

#include "core/spbc.hpp"
#include "mpi/protocol_hooks.hpp"

namespace spbc::baselines {

inline std::unique_ptr<mpi::ProtocolHooks> make_native() {
  return std::make_unique<mpi::NativeProtocol>();
}

inline std::unique_ptr<core::SpbcProtocol> make_global_coordinated(
    core::SpbcConfig cfg = {}) {
  return std::make_unique<core::SpbcProtocol>(cfg);
}

/// Cluster map with everyone in cluster 0 (global coordinated).
inline std::vector<int> single_cluster_map(int nranks) {
  return std::vector<int>(static_cast<size_t>(nranks), 0);
}

/// Cluster map with one cluster per rank (pure message logging). Requires
/// MachineConfig::enforce_node_colocation = false.
inline std::vector<int> per_rank_cluster_map(int nranks) {
  std::vector<int> m(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) m[static_cast<size_t>(r)] = r;
  return m;
}

/// Cluster map with one cluster per node (all inter-node messages logged —
/// Table 1's 64-cluster row).
inline std::vector<int> per_node_cluster_map(int nranks, int ranks_per_node) {
  std::vector<int> m(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) m[static_cast<size_t>(r)] = r / ranks_per_node;
  return m;
}

}  // namespace spbc::baselines

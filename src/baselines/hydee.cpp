#include "baselines/hydee.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::baselines {

HydeeProtocol::HydeeProtocol(HydeeConfig cfg)
    : core::SpbcProtocol(cfg.base), hcfg_(cfg) {}

core::Replayer::Gate HydeeProtocol::make_gate(int /*rank*/) {
  return [this](const mpi::Envelope& env, std::function<void()> proceed) {
    // Request travels to the coordinator.
    machine_->engine().after(hcfg_.coordinator_latency,
                             [this, env, proceed = std::move(proceed)]() mutable {
                               coordinator_enqueue(
                                   PendingGrant{env.lclock, env.uid, std::move(proceed)});
                             });
  };
}

void HydeeProtocol::coordinator_enqueue(PendingGrant g) {
  // Keep the queue in causal (Lamport clock) order: the coordinator releases
  // messages in dependency order.
  auto it = std::upper_bound(pending_.begin(), pending_.end(), g);
  pending_.insert(it, std::move(g));
  try_grant();
}

void HydeeProtocol::try_grant() {
  if (chain_busy_) return;
  if (pending_.empty()) return;
  PendingGrant g = std::move(pending_.front());
  pending_.pop_front();
  chain_busy_ = true;
  ++grants_;
  // FIFO coordinator CPU + grant flight back to the replayer.
  sim::Time now = machine_->engine().now();
  sim::Time start = std::max(now, busy_until_);
  busy_until_ = start + hcfg_.service_time;
  sim::Time grant_arrival = busy_until_ + hcfg_.coordinator_latency;
  machine_->engine().at(grant_arrival,
                        [proceed = std::move(g.proceed)] { proceed(); });
}

void HydeeProtocol::on_replay_delivered(const mpi::Envelope& /*env*/) {
  // Acknowledgement flies back to the coordinator, which then releases the
  // next causally ordered replay.
  machine_->engine().after(hcfg_.coordinator_latency, [this] {
    chain_busy_ = false;
    try_grant();
  });
}

}  // namespace spbc::baselines

#pragma once
// HydEE baseline (Guermouche et al., IPDPS 2012) — the comparator of
// Section 6.5.
//
// HydEE is, like SPBC, a hierarchical protocol that logs no events reliably.
// The difference is recovery: HydEE relies on send-determinism and a
// *central coordinator* that "notifies a process that it can replay the next
// message from logs once the recovering processes have acknowledged that all
// the inter-cluster messages that this message depends on have been
// replayed". We model that faithfully enough to expose the cost the paper
// measures:
//
//   * every replayed message needs a request -> grant round-trip with the
//     coordinator (one-way latency `coordinator_latency`, FIFO service time
//     `service_time` at the coordinator),
//   * grants toward one recovering rank are causally chained: the next
//     message for that rank is granted only after the previous one was
//     delivered and acknowledged (Lamport-clock order breaks ties),
//   * no pattern ids — HydEE predates the A -> A' transformation, so
//     id-based matching is off. (The NAS benchmarks of Fig. 6 use no
//     ANY_SOURCE, so recovery remains correct.)
//
// Everything else (logging, clustering, coordinated checkpoints, rollback
// announcements) is inherited from SpbcProtocol — matching the papers'
// shared lineage.

#include <deque>
#include <map>

#include "core/spbc.hpp"

namespace spbc::baselines {

struct HydeeConfig {
  core::SpbcConfig base;
  // Calibrated to a software coordinator reached over IPoIB (the prototype
  // the paper measured): a round-trip plus dependency bookkeeping costs
  // tens to hundreds of microseconds per replayed message. Message-dense
  // replays (LU's wavefront pencils) consume faster than the coordinator
  // can grant, which is what pushes HydEE's recovery above the failure-free
  // time in Fig. 6; coarse-grained replays (BT/SP) hide most of it.
  sim::Time coordinator_latency = sim::usec(40.0);  // one-way
  sim::Time service_time = sim::usec(30.0);         // per request at coordinator
};

class HydeeProtocol : public core::SpbcProtocol {
 public:
  explicit HydeeProtocol(HydeeConfig cfg);

  bool pattern_matching_enabled() const override { return false; }

  uint64_t grants_issued() const { return grants_; }

 protected:
  core::Replayer::Gate make_gate(int rank) override;

  /// Delivery acknowledgement: the recovering rank confirms the replayed
  /// message arrived; the coordinator then releases the next one. The chain
  /// is GLOBAL — "it notifies a process that it can replay the next message
  /// from logs once the recovering processes have acknowledged ..." — one
  /// replayed message is in flight at a time, in causal (Lamport) order.
  /// This serialization across the whole machine is precisely the
  /// scalability liability Section 6.6 attributes to HydEE.
  void on_replay_delivered(const mpi::Envelope& env) override;

 private:
  struct PendingGrant {
    uint64_t lclock;
    uint64_t uid;
    std::function<void()> proceed;
    bool operator<(const PendingGrant& o) const {
      if (lclock != o.lclock) return lclock < o.lclock;
      return uid < o.uid;
    }
  };

  void coordinator_enqueue(PendingGrant g);
  void try_grant();

  HydeeConfig hcfg_;
  // Coordinator state: one causally ordered queue and one outstanding grant
  // for the whole machine; a FIFO server models the coordinator's CPU.
  std::deque<PendingGrant> pending_;
  bool chain_busy_ = false;
  sim::Time busy_until_ = 0;
  uint64_t grants_ = 0;
};

}  // namespace spbc::baselines

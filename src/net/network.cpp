#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::net {

Network::Network(sim::Engine& engine, const sim::Topology& topo, NetworkParams params)
    : engine_(engine),
      topo_(topo),
      params_(params),
      jitter_rng_(params.jitter_seed, 0x6e65747764ULL),
      nic_free_at_(static_cast<size_t>(topo.nodes()), sim::kTimeZero) {}

sim::Time Network::latency(int src, int dst) const {
  return topo_.same_node(src, dst) ? params_.intra_latency : params_.inter_latency;
}

double Network::bandwidth(int src, int dst) const {
  return topo_.same_node(src, dst) ? params_.intra_bandwidth : params_.inter_bandwidth;
}

sim::Time Network::wire_time(int src_rank, int dst_rank, uint64_t bytes) const {
  return latency(src_rank, dst_rank) +
         static_cast<double>(bytes) / bandwidth(src_rank, dst_rank);
}

sim::Time Network::submit(const Transfer& t, ArrivalFn on_arrival) {
  SPBC_ASSERT(t.src_rank >= 0 && t.src_rank < topo_.nranks());
  SPBC_ASSERT(t.dst_rank >= 0 && t.dst_rank < topo_.nranks());

  ++transfers_;
  bytes_ += t.bytes;

  sim::Time now = engine_.now();
  sim::Time lat = latency(t.src_rank, t.dst_rank);
  if (params_.jitter_frac > 0.0) {
    lat *= 1.0 + params_.jitter_frac * jitter_rng_.next_double();
  }
  double serialize =
      static_cast<double>(t.bytes) / bandwidth(t.src_rank, t.dst_rank);

  sim::Time start = now;
  bool inter_node = !topo_.same_node(t.src_rank, t.dst_rank);
  if (inter_node && params_.model_nic_contention) {
    // The source NIC injects one message at a time.
    auto node = static_cast<size_t>(topo_.node_of(t.src_rank));
    start = std::max(start, nic_free_at_[node]);
    nic_free_at_[node] = start + serialize;
  }

  sim::Time arrival = start + lat + serialize;

  // FIFO per channel: never deliver before an earlier message on the same
  // (src,dst) channel, even if jitter says otherwise.
  auto key = std::make_pair(t.src_rank, t.dst_rank);
  auto it = channel_last_arrival_.find(key);
  if (it != channel_last_arrival_.end()) arrival = std::max(arrival, it->second);
  channel_last_arrival_[key] = arrival;

  engine_.at(arrival, std::move(on_arrival));
  return arrival;
}

}  // namespace spbc::net

#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::net {

namespace {
// splitmix64-style mixer for the order-independent jitter draw.
inline uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

Network::Network(sim::Engine& engine, const sim::Topology& topo, NetworkParams params)
    : engine_(engine),
      topo_(topo),
      params_(params),
      jitter_rng_(params.jitter_seed, 0x6e65747764ULL),
      chan_rows_(static_cast<size_t>(topo.nranks())),
      nic_free_at_(static_cast<size_t>(topo.total_nodes()), sim::kTimeZero) {}

sim::Time Network::latency(int src, int dst) const {
  return node_of(src) == node_of(dst) ? params_.intra_latency
                                      : params_.inter_latency;
}

double Network::bandwidth(int src, int dst) const {
  return node_of(src) == node_of(dst) ? params_.intra_bandwidth
                                      : params_.inter_bandwidth;
}

sim::Time Network::wire_time(int src_rank, int dst_rank, uint64_t bytes) const {
  return latency(src_rank, dst_rank) +
         static_cast<double>(bytes) / bandwidth(src_rank, dst_rank);
}

Network::Chan& Network::channel(int src, int dst) {
  ChanRow& row = chan_rows_[static_cast<size_t>(src)];
  if (row.cells.empty()) row.cells.assign(8, Chan{});
  size_t mask = row.cells.size() - 1;
  size_t i = (static_cast<size_t>(dst) * 0x9E3779B9u) & mask;
  while (row.cells[i].dst != dst) {
    if (row.cells[i].dst == -1) {
      if (row.count * 10 >= row.cells.size() * 7) {
        // Grow and rehash; rows stay small (a rank talks to few peers).
        std::vector<Chan> old = std::move(row.cells);
        row.cells.assign(old.size() * 2, Chan{});
        row.count = 0;
        for (const Chan& c : old)
          if (c.dst != -1) {
            size_t m2 = row.cells.size() - 1;
            size_t j = (static_cast<size_t>(c.dst) * 0x9E3779B9u) & m2;
            while (row.cells[j].dst != -1) j = (j + 1) & m2;
            row.cells[j] = c;
            ++row.count;
          }
        return channel(src, dst);
      }
      row.cells[i].dst = dst;
      ++row.count;
      return row.cells[i];
    }
    i = (i + 1) & mask;
  }
  return row.cells[i];
}

sim::Time Network::submit(const Transfer& t, ArrivalFn on_arrival) {
  return submit_routed(t, t.dst_rank, std::move(on_arrival));
}

sim::Time Network::submit_routed(const Transfer& t, int route_rank,
                                 ArrivalFn on_arrival) {
  SPBC_ASSERT(t.src_rank >= 0 && t.src_rank < topo_.nranks());
  SPBC_ASSERT(t.dst_rank >= 0 && t.dst_rank < topo_.nranks());

  transfers_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(t.bytes, std::memory_order_relaxed);

  Chan& chan = channel(t.src_rank, t.dst_rank);

  sim::Time now = engine_.now();
  sim::Time lat = latency(t.src_rank, t.dst_rank);
  if (params_.jitter_frac > 0.0) {
    double u;
    if (deterministic_jitter_) {
      // Draw from the channel's own counted stream: independent of the
      // global submit interleaving, so identical across shard/thread layouts.
      uint64_t h = mix64(params_.jitter_seed ^
                         mix64((static_cast<uint64_t>(t.src_rank) << 32) ^
                               static_cast<uint64_t>(t.dst_rank) ^
                               (static_cast<uint64_t>(chan.submits) << 20)));
      u = static_cast<double>(h >> 11) * 0x1.0p-53;
    } else {
      u = jitter_rng_.next_double();
    }
    lat *= 1.0 + params_.jitter_frac * u;
  }
  ++chan.submits;
  double serialize =
      static_cast<double>(t.bytes) / bandwidth(t.src_rank, t.dst_rank);

  sim::Time start = now;
  bool inter_node = node_of(t.src_rank) != node_of(t.dst_rank);
  if (inter_node && params_.model_nic_contention) {
    // The source NIC injects one message at a time.
    auto node = static_cast<size_t>(node_of(t.src_rank));
    start = std::max(start, nic_free_at_[node]);
    nic_free_at_[node] = start + serialize;
  }

  sim::Time arrival = start + lat + serialize;

  // Healing partitions: a message crossing a partitioned boundary during the
  // outage is held in the fabric and lands after the heal. The hold runs
  // before the FIFO clamp so later same-channel traffic queues behind it.
  if (!params_.partitions.empty()) {
    const int src_node = node_of(t.src_rank);
    const int dst_node = node_of(t.dst_rank);
    for (const PartitionPhase& p : params_.partitions) {
      if (now < p.start || now >= p.heal) continue;
      if ((src_node < p.boundary_node) == (dst_node < p.boundary_node))
        continue;
      sim::Time healed = p.heal + lat + serialize;
      if (healed > arrival) {
        partition_holds_.fetch_add(1, std::memory_order_relaxed);
        partition_stall_.fetch_add(healed - arrival,
                                   std::memory_order_relaxed);
        arrival = healed;
      }
    }
  }

  // FIFO per channel: never deliver before an earlier message on the same
  // (src,dst) channel, even if jitter says otherwise.
  arrival = std::max(arrival, chan.last_arrival);
  chan.last_arrival = arrival;

  int shard = shard_of_ ? shard_of_(route_rank) : 0;
  engine_.at_on(shard, arrival, std::move(on_arrival));
  return arrival;
}

}  // namespace spbc::net

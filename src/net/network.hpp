#pragma once
// Network model.
//
// Models the paper's testbed shape: shared-memory communication inside a node
// and an InfiniBand-class interconnect (used via IPoIB) between nodes.
// Messages experience latency + size/bandwidth, per-source-node NIC injection
// serialization for inter-node traffic, and strict per-(src,dst) FIFO — the
// property the MPI standard requires and that SPBC's per-channel seqnums rely
// on.
//
// Optional latency jitter (multiplicative, deterministic per seed) perturbs
// cross-channel message interleavings without violating per-channel FIFO.
// The channel-determinism checker runs the same application under different
// jitter seeds and asserts identical per-channel send sequences.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace spbc::net {

struct NetworkParams {
  // Intra-node (shared memory) path.
  sim::Time intra_latency = sim::usec(0.6);
  double intra_bandwidth = 6.0e9;  // bytes/s

  // Inter-node path (IPoIB over IB 20G, per the paper's setup).
  sim::Time inter_latency = sim::usec(12.0);
  double inter_bandwidth = 1.0e9;  // bytes/s

  // Per-message software overhead charged to the sender (MPI stack cost).
  sim::Time send_overhead = sim::usec(0.35);

  // NIC injection serialization applies to inter-node messages only.
  bool model_nic_contention = true;

  // Multiplicative latency jitter in [1, 1+jitter_frac); 0 disables.
  double jitter_frac = 0.0;
  uint64_t jitter_seed = 0;
};

/// A transfer handed to the network; `on_arrival` fires at the destination
/// when the last byte lands.
struct Transfer {
  int src_rank = -1;
  int dst_rank = -1;
  uint64_t bytes = 0;
};

class Network {
 public:
  using ArrivalFn = std::function<void()>;

  Network(sim::Engine& engine, const sim::Topology& topo, NetworkParams params);

  const NetworkParams& params() const { return params_; }
  const sim::Topology& topology() const { return topo_; }

  /// Submits a transfer; schedules on_arrival at the computed arrival time.
  /// FIFO per (src,dst) is guaranteed regardless of jitter.
  /// Returns the arrival time.
  sim::Time submit(const Transfer& t, ArrivalFn on_arrival);

  /// Pure cost query (no event scheduled): the time a `bytes`-sized message
  /// from src to dst would occupy the wire, excluding queuing.
  sim::Time wire_time(int src_rank, int dst_rank, uint64_t bytes) const;

  /// Sender-side overhead for one message (charged by the MPI layer).
  sim::Time send_overhead() const { return params_.send_overhead; }

  uint64_t transfers_submitted() const { return transfers_; }
  uint64_t bytes_submitted() const { return bytes_; }

 private:
  sim::Time latency(int src, int dst) const;
  double bandwidth(int src, int dst) const;

  sim::Engine& engine_;
  sim::Topology topo_;
  NetworkParams params_;
  util::Pcg32 jitter_rng_;

  // Per-channel last-arrival time, to enforce FIFO under jitter.
  std::map<std::pair<int, int>, sim::Time> channel_last_arrival_;
  // Per-node NIC next-free time (inter-node injection serialization).
  std::vector<sim::Time> nic_free_at_;

  uint64_t transfers_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace spbc::net

#pragma once
// Network model.
//
// Models the paper's testbed shape: shared-memory communication inside a node
// and an InfiniBand-class interconnect (used via IPoIB) between nodes.
// Messages experience latency + size/bandwidth, per-source-node NIC injection
// serialization for inter-node traffic, and strict per-(src,dst) FIFO — the
// property the MPI standard requires and that SPBC's per-channel seqnums rely
// on.
//
// Optional latency jitter (multiplicative, deterministic per seed) perturbs
// cross-channel message interleavings without violating per-channel FIFO.
// The channel-determinism checker runs the same application under different
// jitter seeds and asserts identical per-channel send sequences.
//
// Sharded engine integration: arrivals are scheduled on the key shard owning
// the *routing* rank (the destination by default), so delivery callbacks
// mutate only that shard's state. Per-channel FIFO state lives in flat
// per-source rows — owned by the sender's shard, so submits from concurrent
// shard threads never share a row. With `deterministic jitter` enabled the
// jitter draw is a counter-hash of the channel instead of a shared global
// RNG stream, making it independent of cross-channel submit order (and so
// identical for every shard/thread configuration).

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace spbc::net {

/// One healing-partition window (see NetworkParams::partitions).
struct PartitionPhase {
  sim::Time start = 0;
  sim::Time heal = 0;
  int boundary_node = 0;  // side A: node < boundary_node; side B: the rest
};

struct NetworkParams {
  // Intra-node (shared memory) path.
  sim::Time intra_latency = sim::usec(0.6);
  double intra_bandwidth = 6.0e9;  // bytes/s

  // Inter-node path (IPoIB over IB 20G, per the paper's setup).
  sim::Time inter_latency = sim::usec(12.0);
  double inter_bandwidth = 1.0e9;  // bytes/s

  // Per-message software overhead charged to the sender (MPI stack cost).
  sim::Time send_overhead = sim::usec(0.35);

  // NIC injection serialization applies to inter-node messages only.
  bool model_nic_contention = true;

  // Multiplicative latency jitter in [1, 1+jitter_frac); 0 disables.
  double jitter_frac = 0.0;
  uint64_t jitter_seed = 0;

  // Healing network partitions (hostile workload matrix; DESIGN.md §16):
  // during [start, heal) messages crossing the boundary — one endpoint on a
  // node < boundary_node, the other on a node >= it — are held in the fabric
  // and land no earlier than heal time plus their normal wire time, modeling
  // a switch/uplink outage that heals without dropping traffic. Per-channel
  // FIFO still holds (the clamp runs after the hold). Empty = no partitions;
  // every arrival time is byte-identical to the unpartitioned run.
  std::vector<PartitionPhase> partitions{};
};

/// A transfer handed to the network; `on_arrival` fires at the destination
/// when the last byte lands.
struct Transfer {
  int src_rank = -1;
  int dst_rank = -1;
  uint64_t bytes = 0;
};

class Network {
 public:
  using ArrivalFn = std::function<void()>;

  Network(sim::Engine& engine, const sim::Topology& topo, NetworkParams params);

  const NetworkParams& params() const { return params_; }
  const sim::Topology& topology() const { return topo_; }

  /// Rank -> key shard map for arrival routing (the machine wires its
  /// cluster map here). Unset = everything on shard 0 (legacy engine).
  void set_shard_of(std::function<int(int)> shard_of) {
    shard_of_ = std::move(shard_of);
  }

  /// Rank -> physical node map (the machine wires its dynamic binding here:
  /// spare-node hot-swap and shrunk restart move ranks off their block-layout
  /// home). Unset = the topology's static block layout. Same-node checks and
  /// NIC indexing consult it, so traffic to a migrated rank rides the new
  /// node's NIC.
  void set_node_of(std::function<int(int)> node_of) {
    node_of_ = std::move(node_of);
  }

  /// Order-independent jitter draws (counter-hash per channel instead of the
  /// shared RNG stream). Required for sharded/threaded runs; changes jitter
  /// values — legacy single-shard runs keep the original stream.
  void set_deterministic_jitter(bool v) { deterministic_jitter_ = v; }

  /// Submits a transfer; schedules on_arrival at the computed arrival time
  /// on the destination rank's shard. FIFO per (src,dst) is guaranteed
  /// regardless of jitter. Returns the arrival time.
  sim::Time submit(const Transfer& t, ArrivalFn on_arrival);

  /// Like submit(), but the arrival callback runs on `route_rank`'s shard
  /// (staging drains route arrivals to the fragment's home rank, whose entry
  /// tables the callback mutates).
  sim::Time submit_routed(const Transfer& t, int route_rank,
                          ArrivalFn on_arrival);

  /// Pure cost query (no event scheduled): the time a `bytes`-sized message
  /// from src to dst would occupy the wire, excluding queuing.
  sim::Time wire_time(int src_rank, int dst_rank, uint64_t bytes) const;

  /// Sender-side overhead for one message (charged by the MPI layer).
  sim::Time send_overhead() const { return params_.send_overhead; }

  uint64_t transfers_submitted() const {
    return transfers_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_submitted() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Messages held by a healing-partition window, and the total extra
  /// in-fabric delay they accumulated (hostile-shape accounting).
  uint64_t partition_msgs_held() const {
    return partition_holds_.load(std::memory_order_relaxed);
  }
  sim::Time partition_stall_time() const {
    return partition_stall_.load(std::memory_order_relaxed);
  }

 private:
  // Per-(src,dst) FIFO/jitter state, stored in a flat open-addressed row per
  // source rank (same idiom as TrafficMatrix). A row is only ever touched by
  // its source rank's shard.
  struct Chan {
    int dst = -1;  // -1 = empty cell
    sim::Time last_arrival = sim::kTimeZero;
    uint32_t submits = 0;  // per-channel jitter counter
  };
  struct ChanRow {
    std::vector<Chan> cells;
    size_t count = 0;
  };
  Chan& channel(int src, int dst);

  int node_of(int rank) const {
    return node_of_ ? node_of_(rank) : topo_.node_of(rank);
  }
  sim::Time latency(int src, int dst) const;
  double bandwidth(int src, int dst) const;

  sim::Engine& engine_;
  sim::Topology topo_;
  NetworkParams params_;
  util::Pcg32 jitter_rng_;
  bool deterministic_jitter_ = false;
  std::function<int(int)> shard_of_;
  std::function<int(int)> node_of_;

  std::vector<ChanRow> chan_rows_;  // indexed by src rank
  // Per-node NIC next-free time (inter-node injection serialization). With
  // node-colocated clusters a node belongs to one shard; threaded runs
  // require colocation (enforced by the machine).
  std::vector<sim::Time> nic_free_at_;

  std::atomic<uint64_t> transfers_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> partition_holds_{0};
  std::atomic<sim::Time> partition_stall_{0.0};
};

}  // namespace spbc::net

// BoomerAMG skeleton: parallel algebraic multigrid V-cycles with the
// assumed-partition exchanges of Figure 4 at every level.
//
// AMG is the paper's star witness: its exchange is channel-deterministic
// but NOT send-deterministic (a process answers queries in arrival order, so
// its per-process send sequence differs between valid executions while every
// per-channel sequence is fixed), it needs the ANY_SOURCE pattern API in
// three places, it spends over half its time communicating (coarse levels
// are latency-bound swarms of small messages), and it gains the most from
// recovery (up to ~25% faster than failure-free in Fig. 5).
//
// Skeleton: L levels; at each level, a query/reply exchange with a
// data-dependent contact set (face neighbors at the fine level, widening
// hash-derived sets at coarse levels), message sizes shrinking 4x per level
// and compute shrinking 6x per level. Three annotated patterns: down-sweep
// exchange, up-sweep exchange, and the inter-cycle residual exchange.

#include "apps/app.hpp"
#include "apps/assumed_partition.hpp"
#include "apps/decomp.hpp"
#include "core/api.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kLevels = 4;
constexpr int kTagQueryBase = 60;  // +2*level
// AMG's cost is in the message COUNT (latency-bound coarse levels, probe
// loops, termination), not volume: the paper logs only ~1.7 MB/s/process
// even under pure message logging while spending >50% of the time in
// communication.
constexpr uint64_t kFineBytes = 4 * 1000;
constexpr double kFineComputeSeconds = 8e-3;

struct State : BaseState {
  std::vector<double> residual;

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(residual);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    residual = r.get_vector<double>();
  }
};

// Contact set at a level: faces at the fine level; coarser levels reach
// farther (hash-derived, pure in (rank, level)). Memoized — the expected-
// count computation of the assumed-partition exchange evaluates every rank's
// contacts, which is O(n^2) work per exchange at 512 ranks without a cache.
const std::vector<int>& level_contacts(int me, int n, int level, const Grid3D& grid) {
  static std::map<std::tuple<int, int>, std::vector<std::vector<int>>> cache;
  auto key = std::make_tuple(n, level);
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::vector<std::vector<int>> all(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      std::vector<int> c = grid.face_neighbors(r);
      int extra = 2 * level;
      for (int k = 0; k < extra; ++k) {
        int t = static_cast<int>(
            synthetic_hash(static_cast<uint64_t>(r), static_cast<uint64_t>(level),
                           static_cast<uint64_t>(k), 0xa3) %
            static_cast<uint64_t>(n));
        if (t != r) c.push_back(t);
      }
      all[static_cast<size_t>(r)] = std::move(c);
    }
    it = cache.emplace(key, std::move(all)).first;
  }
  return it->second[static_cast<size_t>(me)];
}

uint64_t level_bytes(int level) { return kFineBytes >> (2 * level); }
}  // namespace

void amg_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid3D grid = Grid3D::balanced(rank.nranks(), /*periodic=*/false);
  const int n = rank.nranks();

  State st;
  if (cfg.validate) st.residual.assign(32, 1.0);
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  // Three communication patterns include MPI_ANY_SOURCE (Section 6.1:
  // "In AMG ... three patterns include MPI_ANY_SOURCE. For each pattern it
  // was enough to enclose the function that contains it between a
  // BEGIN_ITERATION and an END_ITERATION call.")
  const core::pattern_id down_pattern = core::DECLARE_PATTERN(rank);
  const core::pattern_id up_pattern = core::DECLARE_PATTERN(rank);
  const core::pattern_id residual_pattern = core::DECLARE_PATTERN(rank);

  auto run_level = [&](int level, core::pattern_id pattern, uint64_t salt) {
    core::BEGIN_ITERATION(rank, pattern);
    ApExchangeSpec spec;
    spec.contacts_of = [n, level, &grid](int r) {
      return level_contacts(r, n, level, grid);
    };
    spec.tag_query = kTagQueryBase + 2 * level;
    spec.tag_reply = kTagQueryBase + 2 * level + 1;
    spec.query_bytes = std::max<uint64_t>(level_bytes(level) / 8, 256);
    spec.reply_bytes = std::max<uint64_t>(level_bytes(level), 512);
    spec.hash_key = salt * 131 + static_cast<uint64_t>(level);
    assumed_partition_exchange(rank, world, cfg, spec, st.checksum);
    core::END_ITERATION(rank, pattern);
    double c = kFineComputeSeconds / (1 << level) / (1 << (level / 2));
    rank.compute(c * cfg.compute_scale);
  };

  for (; st.iter < cfg.iters;) {
    uint64_t cycle_salt = static_cast<uint64_t>(st.iter) * 7919;
    // Down sweep: smooth + restrict through the hierarchy.
    for (int level = 0; level < kLevels; ++level)
      run_level(level, down_pattern, cycle_salt * 2);
    // Up sweep: interpolate + smooth back to the fine level.
    for (int level = kLevels - 1; level >= 0; --level)
      run_level(level, up_pattern, cycle_salt * 2 + 1);

    // Residual norm exchange (third annotated pattern) + convergence check.
    core::BEGIN_ITERATION(rank, residual_pattern);
    ApExchangeSpec spec;
    spec.contacts_of = [n, &grid](int r) { return level_contacts(r, n, 0, grid); };
    spec.tag_query = kTagQueryBase + 2 * kLevels;
    spec.tag_reply = kTagQueryBase + 2 * kLevels + 1;
    spec.query_bytes = 512;
    spec.reply_bytes = 2048;
    spec.hash_key = cycle_salt * 2 + 7;
    assumed_partition_exchange(rank, world, cfg, spec, st.checksum);
    core::END_ITERATION(rank, residual_pattern);

    if (cfg.validate) {
      for (auto& v : st.residual) v *= 0.6;
    }
    double norm = cfg.validate ? st.residual[0] : 1.0 / (1 + st.iter);
    double global = mpi::allreduce_scalar(rank, norm, mpi::ReduceOp::kMax, world);
    util::Fnv1a64 h;
    h.update_u64(st.checksum);
    h.update(&global, sizeof(global));
    st.checksum = h.digest();

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

// NAS parallel benchmark skeletons (BT, LU, MG, SP) — the workloads of the
// HydEE comparison in Section 6.5 / Figure 6. None of them uses
// MPI_ANY_SOURCE, which is why the HydEE prototype could run them.
//
//   BT / SP: ADI solvers; per iteration, pipelined line sweeps along both
//     dimensions of the process grid plus boundary exchanges. BT moves
//     bigger blocks less often; SP smaller blocks more often.
//   LU: SSOR with 2D pipelined wavefronts — many small pencil messages per
//     iteration. The replay of this swarm of small logged messages is
//     exactly where HydEE's per-message coordinator round-trip hurts most.
//   MG: geometric multigrid V-cycle with named-source halo exchanges whose
//     sizes shrink with the level.

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {

struct State : BaseState {
  std::vector<double> u;

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(u);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    u = r.get_vector<double>();
  }
};

void init_state(mpi::Rank& rank, const AppConfig& cfg, State& st) {
  if (cfg.validate) st.u.assign(32, 1.0 + 0.01 * rank.rank());
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();
}

/// One pipelined sweep along dimension `dim` of a 2D grid: receive the
/// incoming plane from the predecessor, do the line solve, forward to the
/// successor. `dir` = +1 (forward) or -1 (backward substitution).
void line_sweep(mpi::Rank& rank, const AppConfig& cfg, const Grid2D& grid, State& st,
                int dim, int dir, int tag, uint64_t bytes, double compute_s,
                uint64_t salt) {
  const mpi::Comm& world = rank.world();
  const int me = rank.rank();
  int pred = grid.neighbor(me, dim, -dir);
  int succ = grid.neighbor(me, dim, dir);
  if (pred >= 0) {
    mpi::RecvResult rr = rank.recv(pred, tag, world);
    fold_checksum(st.checksum, rr);
  }
  rank.compute(compute_s * cfg.compute_scale);
  if (succ >= 0) {
    uint64_t h = synthetic_hash(me, succ, st.iter, salt);
    rank.send(succ, tag,
              make_payload(cfg,
                           static_cast<uint64_t>(static_cast<double>(bytes) *
                                                 cfg.burst_msg_scale(st.iter)),
                           h, &st.u),
              world);
  }
}

/// Named-source face exchange on a grid (used by BT/SP boundary updates and
/// MG levels).
template <int N>
void face_exchange(mpi::Rank& rank, const AppConfig& cfg, const CartGrid<N>& grid,
                   State& st, int tag, uint64_t bytes, uint64_t salt) {
  const mpi::Comm& world = rank.world();
  const int me = rank.rank();
  std::vector<int> nbrs = grid.face_neighbors(me);
  std::vector<mpi::Request> recvs;
  for (int nb : nbrs) recvs.push_back(rank.irecv(nb, tag, world));
  for (int nb : nbrs) {
    uint64_t h = synthetic_hash(me, nb, st.iter, salt);
    rank.isend(nb, tag,
               make_payload(cfg,
                            static_cast<uint64_t>(static_cast<double>(bytes) *
                                                  cfg.burst_msg_scale(st.iter)),
                            h, &st.u),
               world);
  }
  for (auto& rr : recvs) {
    rank.wait(rr);
    fold_checksum(st.checksum, rr.result());
  }
}

void adi_main(mpi::Rank& rank, const AppConfig& cfg, uint64_t sweep_bytes,
              uint64_t face_bytes, double sweep_compute, double face_compute,
              uint64_t salt) {
  Grid2D grid = Grid2D::balanced(rank.nranks(), /*periodic=*/false);
  State st;
  init_state(rank, cfg, st);
  for (; st.iter < cfg.iters;) {
    // x sweep (forward + backward), then y sweep.
    for (int dim = 0; dim < 2; ++dim) {
      line_sweep(rank, cfg, grid, st, dim, +1, 70 + dim, sweep_bytes, sweep_compute,
                 salt + static_cast<uint64_t>(dim));
      line_sweep(rank, cfg, grid, st, dim, -1, 72 + dim, sweep_bytes, sweep_compute,
                 salt + 10 + static_cast<uint64_t>(dim));
    }
    // Boundary condition update.
    face_exchange(rank, cfg, grid, st, 75, face_bytes, salt + 20);
    rank.compute(face_compute * cfg.compute_scale);
    if (cfg.validate)
      for (auto& v : st.u) v = 0.95 * v + 0.001;
    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace

void nas_bt_main(mpi::Rank& rank, const AppConfig& cfg) {
  // Larger blocks, fewer messages: 40 KB sweep planes, 30 KB faces.
  adi_main(rank, cfg, 40 * 1000, 30 * 1000, 6e-3, 18e-3, 0xb700);
}

void nas_sp_main(mpi::Rank& rank, const AppConfig& cfg) {
  // Scalar penta-diagonal: smaller planes, less compute per sweep.
  adi_main(rank, cfg, 18 * 1000, 14 * 1000, 3e-3, 9e-3, 0x5900);
}

void nas_lu_main(mpi::Rank& rank, const AppConfig& cfg) {
  // SSOR: per iteration, nz wavefront planes propagate from the south-west
  // corner (lower triangular) and back (upper). Every plane is a small
  // pencil message to east and south — a swarm of small logged messages.
  constexpr int kPlanes = 12;
  constexpr uint64_t kPencilBytes = 2 * 1000;
  const mpi::Comm& world = rank.world();
  Grid2D grid = Grid2D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  State st;
  init_state(rank, cfg, st);

  auto wavefront = [&](int dir, int tag_base, uint64_t salt) {
    int pred_x = grid.neighbor(me, 0, -dir);
    int pred_y = grid.neighbor(me, 1, -dir);
    int succ_x = grid.neighbor(me, 0, dir);
    int succ_y = grid.neighbor(me, 1, dir);
    for (int k = 0; k < kPlanes; ++k) {
      if (pred_x >= 0) fold_checksum(st.checksum, rank.recv(pred_x, tag_base, world));
      if (pred_y >= 0) fold_checksum(st.checksum, rank.recv(pred_y, tag_base + 1, world));
      rank.compute(0.35e-3 * cfg.compute_scale);
      uint64_t bytes =
          static_cast<uint64_t>(static_cast<double>(kPencilBytes) * cfg.msg_scale);
      if (succ_x >= 0)
        rank.send(succ_x, tag_base,
                  make_payload(cfg, bytes,
                               synthetic_hash(me, succ_x, st.iter * kPlanes + k, salt),
                               &st.u),
                  world);
      if (succ_y >= 0)
        rank.send(succ_y, tag_base + 1,
                  make_payload(cfg, bytes,
                               synthetic_hash(me, succ_y, st.iter * kPlanes + k, salt + 1),
                               &st.u),
                  world);
    }
  };

  for (; st.iter < cfg.iters;) {
    wavefront(+1, 80, 0x10a);  // lower-triangular solve
    wavefront(-1, 82, 0x10b);  // upper-triangular solve
    rank.compute(2e-3 * cfg.compute_scale);
    if (cfg.validate)
      for (auto& v : st.u) v = 0.9 * v + 0.01;
    // RHS norm check.
    double norm = mpi::allreduce_scalar(
        rank, cfg.validate ? st.u[0] : 1.0, mpi::ReduceOp::kSum, world);
    util::Fnv1a64 h;
    h.update_u64(st.checksum);
    h.update(&norm, sizeof(norm));
    st.checksum = h.digest();
    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

void nas_mg_main(mpi::Rank& rank, const AppConfig& cfg) {
  constexpr int kLevels = 4;
  constexpr uint64_t kFineFace = 16 * 1000;
  Grid3D grid = Grid3D::balanced(rank.nranks(), /*periodic=*/true);
  State st;
  init_state(rank, cfg, st);
  for (; st.iter < cfg.iters;) {
    // V-cycle: restrict down, then interpolate up; halo exchange per level.
    for (int level = 0; level < kLevels; ++level) {
      face_exchange(rank, cfg, grid, st, 90 + level, kFineFace >> (2 * level),
                    0x3900 + static_cast<uint64_t>(level));
      rank.compute(4e-3 / (1 << level) * cfg.compute_scale);
    }
    for (int level = kLevels - 1; level >= 0; --level) {
      face_exchange(rank, cfg, grid, st, 94 + level, kFineFace >> (2 * level),
                    0x3910 + static_cast<uint64_t>(level));
      rank.compute(4e-3 / (1 << level) * cfg.compute_scale);
    }
    if (cfg.validate)
      for (auto& v : st.u) v = 0.85 * v + 0.02;
    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

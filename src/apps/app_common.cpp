#include <algorithm>

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace spbc::apps {

std::vector<int> dims_create(int n, int ndims) {
  SPBC_ASSERT(n >= 1 && ndims >= 1);
  std::vector<int> dims(static_cast<size_t>(ndims), 1);
  // Repeatedly peel the largest prime factor onto the smallest dimension.
  int rest = n;
  std::vector<int> factors;
  for (int p = 2; p * p <= rest; ++p) {
    while (rest % p == 0) {
      factors.push_back(p);
      rest /= p;
    }
  }
  if (rest > 1) factors.push_back(rest);
  std::sort(factors.rbegin(), factors.rend());
  for (int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

uint64_t synthetic_hash(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  util::Fnv1a64 h;
  h.update_u64(a);
  h.update_u64(b);
  h.update_u64(c);
  h.update_u64(d);
  return h.digest();
}

mpi::Payload make_payload(const AppConfig& cfg, uint64_t bytes, uint64_t hash,
                          const std::vector<double>* fill) {
  if (!cfg.validate) return mpi::Payload::make_synthetic(std::max<uint64_t>(bytes, 8), hash);
  if (fill != nullptr && !fill->empty()) return mpi::Payload::from_vector(*fill);
  // Derive deterministic content from the hash so both sides can verify.
  uint64_t n = std::max<uint64_t>(bytes / sizeof(double), 1);
  n = std::min<uint64_t>(n, 512);  // keep validate-mode payloads small
  std::vector<double> data(n);
  uint64_t x = hash;
  for (auto& v : data) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>(x >> 16) / 1e12;
  }
  return mpi::Payload::from_vector(data);
}

void fold_checksum(uint64_t& acc, const mpi::RecvResult& rr) {
  util::Fnv1a64 h;
  h.update_u64(acc);
  h.update_u64(rr.hash);
  h.update_u64(rr.bytes);
  h.update_u64(static_cast<uint64_t>(rr.tag));
  acc = h.digest();
}

void fold_checksum_commutative(uint64_t& acc, const mpi::RecvResult& rr) {
  util::Fnv1a64 h;
  h.update_u64(rr.hash);
  h.update_u64(rr.bytes);
  h.update_u64(static_cast<uint64_t>(rr.tag));
  acc += h.digest();  // wrapping addition commutes
}

void publish_checksum(mpi::Rank& rank, const AppConfig& cfg, uint64_t checksum) {
  if (cfg.checksums != nullptr) (*cfg.checksums)[rank.rank()] = checksum;
}

const AppInfo& find_app(const std::string& name) {
  for (const auto& info : registry())
    if (info.name == name) return info;
  std::string known;
  for (const auto& info : registry()) known += info.name + " ";
  SPBC_ASSERT_MSG(false, "unknown app '" << name << "'; known: " << known);
  __builtin_unreachable();
}

const std::vector<AppInfo>& registry() {
  static const std::vector<AppInfo> apps = {
      {"AMG", amg_main, true,
       "BoomerAMG skeleton: V-cycle with assumed-partition ANY_SOURCE exchanges"},
      {"CM1", cm1_main, false,
       "CM1 skeleton: 2D halo exchange, compute-heavy, one silent rank"},
      {"GTC", gtc_main, true,
       "GTC skeleton: toroidal particle shift ring + partdom reductions"},
      {"MILC", milc_main, true,
       "MILC skeleton: 4D lattice CG with gather-from-directions"},
      {"MiniFE", minife_main, true,
       "MiniFE skeleton: CG solve, halo + dot products, ANY_SOURCE setup"},
      {"MiniGhost", minighost_main, false,
       "MiniGhost skeleton: BSPMA 7-point stencil halo exchange"},
      {"MiniFE-facade", minife_facade_main, true,
       "MiniFE ported to the four-call facade (core/facade.hpp)"},
      {"BT", nas_bt_main, false, "NAS BT skeleton: multi-partition ADI sweeps"},
      {"BT-facade", nas_bt_facade_main, false,
       "NAS BT ported to the four-call facade (core/facade.hpp)"},
      {"LU", nas_lu_main, false, "NAS LU skeleton: SSOR pipelined wavefront"},
      {"MG", nas_mg_main, false, "NAS MG skeleton: V-cycle geometric multigrid"},
      {"SP", nas_sp_main, false, "NAS SP skeleton: scalar penta-diagonal sweeps"},
  };
  return apps;
}

}  // namespace spbc::apps

// MiniFE skeleton: unstructured implicit finite-element proxy — assemble,
// then solve with CG.
//
// The setup phase discovers which ranks own externally-referenced rows; the
// owners cannot know who will query them, so the discovery uses the
// Figure-4-style ANY_SOURCE exchange (this is the single pattern Section 6.1
// says was annotated in MiniFE). The CG iterations that follow are named-
// source halo exchanges plus two dot-product allreduces per iteration, with
// a heavy sparse matvec — comm ratio below 10% and the smallest log volume
// of the six workloads (Table 1).

#include "apps/app.hpp"
#include "apps/assumed_partition.hpp"
#include "apps/decomp.hpp"
#include "core/api.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kTagSetupQuery = 30;
constexpr int kTagSetupReply = 31;
constexpr int kTagHalo = 32;
// 800^3 FE mesh over 512 ranks: CG halos are boundary-row fragments (~6 KB);
// the matvec dominates at ~55 ms/iteration.
constexpr uint64_t kHaloBytes = 6 * 1000;
constexpr uint64_t kSetupBytes = 2 * 1000;
constexpr double kMatvecSeconds = 55e-3;

struct State : BaseState {
  bool setup_done = false;
  std::vector<double> x;  // validate-mode solution fragment

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put<uint8_t>(setup_done ? 1 : 0);
    w.put_vector(x);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    setup_done = r.get<uint8_t>() != 0;
    x = r.get_vector<double>();
  }
};

// Data-dependent contact set: face neighbors plus a couple of hash-derived
// "unstructured mesh" contacts. Pure function of (rank, n) as required;
// memoized for the O(n^2) expected-count computation.
const std::vector<int>& setup_contacts(int me, int n, const Grid3D& grid) {
  static std::map<int, std::vector<std::vector<int>>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::vector<std::vector<int>> all(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      std::vector<int> c = grid.face_neighbors(r);
      for (uint64_t k = 0; k < 2; ++k) {
        int extra = static_cast<int>(
            synthetic_hash(static_cast<uint64_t>(r), k, 0xfe, 0) %
            static_cast<uint64_t>(n));
        if (extra != r) c.push_back(extra);
      }
      all[static_cast<size_t>(r)] = std::move(c);
    }
    it = cache.emplace(n, std::move(all)).first;
  }
  return it->second[static_cast<size_t>(me)];
}
}  // namespace

void minife_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid3D grid = Grid3D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  const int n = rank.nranks();
  const std::vector<int> neighbors = grid.face_neighbors(me);

  State st;
  if (cfg.validate) st.x.assign(32, 1.0 / (1.0 + me));
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  // ---- setup: make_local_matrix neighbor discovery (ANY_SOURCE) ----------
  const core::pattern_id setup_pattern = core::DECLARE_PATTERN(rank);
  if (!st.setup_done) {
    core::BEGIN_ITERATION(rank, setup_pattern);
    ApExchangeSpec spec;
    spec.contacts_of = [n, &grid](int r) { return setup_contacts(r, n, grid); };
    spec.tag_query = kTagSetupQuery;
    spec.tag_reply = kTagSetupReply;
    spec.query_bytes = kSetupBytes;
    spec.reply_bytes = kSetupBytes * 4;
    spec.hash_key = 0xfe00;
    assumed_partition_exchange(rank, world, cfg, spec, st.checksum);
    core::END_ITERATION(rank, setup_pattern);
    rank.compute(10e-3 * cfg.compute_scale);  // matrix assembly
    st.setup_done = true;
    rank.maybe_checkpoint();
  }

  // ---- CG iterations ------------------------------------------------------
  for (; st.iter < cfg.iters;) {
    // Halo exchange of boundary rows (named sources).
    std::vector<mpi::Request> recvs;
    for (int nb : neighbors) recvs.push_back(rank.irecv(nb, kTagHalo, world));
    const uint64_t bytes = static_cast<uint64_t>(
        static_cast<double>(kHaloBytes) * cfg.burst_msg_scale(st.iter));
    for (int nb : neighbors) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me), static_cast<uint64_t>(nb),
                                  static_cast<uint64_t>(st.iter), 0xfe01);
      rank.isend(nb, kTagHalo, make_payload(cfg, bytes, h, &st.x), world);
    }
    for (auto& rr : recvs) {
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }

    // Sparse matvec dominates.
    rank.compute(kMatvecSeconds * cfg.compute_scale);
    double local_dot = 0;
    if (cfg.validate) {
      for (auto& v : st.x) {
        v *= 0.999;
        local_dot += v * v;
      }
    } else {
      local_dot = static_cast<double>(st.iter + me);
    }

    // Two dot products per CG iteration (alpha and beta).
    double d1 = mpi::allreduce_scalar(rank, local_dot, mpi::ReduceOp::kSum, world);
    double d2 = mpi::allreduce_scalar(rank, d1 * 0.5, mpi::ReduceOp::kSum, world);
    util::Fnv1a64 h;
    h.update_u64(st.checksum);
    h.update(&d2, sizeof(d2));
    st.checksum = h.digest();

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

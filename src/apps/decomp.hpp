#pragma once
// Cartesian decompositions shared by the workloads: balanced factorizations
// of the rank count into 1D/2D/3D/4D process grids with periodic or bounded
// neighbor lookup.

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace spbc::apps {

/// Factorizes n into `dims` balanced factors (largest first), MPI_Dims_create
/// style.
std::vector<int> dims_create(int n, int ndims);

template <int N>
class CartGrid {
 public:
  CartGrid(int nranks, std::array<int, N> dims, bool periodic)
      : dims_(dims), periodic_(periodic) {
    int prod = 1;
    for (int d : dims_) prod *= d;
    SPBC_ASSERT_MSG(prod == nranks, "grid " << prod << " != nranks " << nranks);
  }

  static CartGrid balanced(int nranks, bool periodic) {
    auto f = dims_create(nranks, N);
    std::array<int, N> dims{};
    for (int i = 0; i < N; ++i) dims[static_cast<size_t>(i)] = f[static_cast<size_t>(i)];
    return CartGrid(nranks, dims, periodic);
  }

  const std::array<int, N>& dims() const { return dims_; }

  std::array<int, N> coords(int rank) const {
    std::array<int, N> c{};
    for (int i = N - 1; i >= 0; --i) {
      c[static_cast<size_t>(i)] = rank % dims_[static_cast<size_t>(i)];
      rank /= dims_[static_cast<size_t>(i)];
    }
    return c;
  }

  int rank_of(const std::array<int, N>& c) const {
    int r = 0;
    for (int i = 0; i < N; ++i) {
      SPBC_ASSERT(c[static_cast<size_t>(i)] >= 0 &&
                  c[static_cast<size_t>(i)] < dims_[static_cast<size_t>(i)]);
      r = r * dims_[static_cast<size_t>(i)] + c[static_cast<size_t>(i)];
    }
    return r;
  }

  /// Neighbor along dimension `dim` in direction `dir` (+1/-1); -1 when the
  /// grid is bounded and the neighbor falls outside.
  int neighbor(int rank, int dim, int dir) const {
    auto c = coords(rank);
    int v = c[static_cast<size_t>(dim)] + dir;
    int extent = dims_[static_cast<size_t>(dim)];
    if (periodic_) {
      v = (v % extent + extent) % extent;
    } else if (v < 0 || v >= extent) {
      return -1;
    }
    c[static_cast<size_t>(dim)] = v;
    return rank_of(c);
  }

  /// All existing face neighbors (2*N or fewer on bounded grids).
  std::vector<int> face_neighbors(int rank) const {
    std::vector<int> out;
    for (int d = 0; d < N; ++d) {
      for (int dir : {-1, +1}) {
        int nb = neighbor(rank, d, dir);
        if (nb >= 0 && nb != rank) out.push_back(nb);
      }
    }
    return out;
  }

 private:
  std::array<int, N> dims_;
  bool periodic_;
};

using Grid1D = CartGrid<1>;
using Grid2D = CartGrid<2>;
using Grid3D = CartGrid<3>;
using Grid4D = CartGrid<4>;

}  // namespace spbc::apps

#pragma once
// Workload framework.
//
// Each workload is a communication skeleton of one of the paper's evaluation
// applications (Section 6.1): same decomposition, same per-iteration
// communication pattern (sizes, neighbor sets, ANY_SOURCE usage), and a
// compute model calibrated so the communication/computation ratio and the
// per-process logging rates land in the regime the paper reports. In
// `validate` mode the apps carry real payloads through the exchanges and
// fold them into a checksum, so end-to-end recovery tests can assert that a
// failed-and-recovered run produces bit-identical results.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mpi/rank.hpp"

namespace spbc::apps {

struct AppConfig {
  int iters = 20;
  /// Multiplies all message sizes (1.0 = calibrated defaults).
  double msg_scale = 1.0;
  /// Multiplies all compute times (1.0 = calibrated defaults).
  double compute_scale = 1.0;
  /// Real payloads + checksum folding (tests); false = synthetic payloads
  /// (benches: no allocation, same protocol path).
  bool validate = false;
  /// Where final per-rank checksums are deposited (validate mode); owned by
  /// the caller, single-threaded simulator makes this safe.
  std::map<int, uint64_t>* checksums = nullptr;

  /// Bursty / adversarial traffic phases (hostile workload matrix; DESIGN.md
  /// §16): every burst_period iterations the app spends burst_duty of them
  /// in a burst, multiplying its message sizes by burst_factor (applied via
  /// burst_msg_scale). The schedule is a pure function of the iteration
  /// index, so a fixed burst config is fully deterministic — recovery
  /// re-executes the same burst and checksums stay identical. factor <= 1
  /// or period == 0 disables the shape (byte-identical messages).
  double burst_factor = 1.0;
  int burst_period = 0;
  int burst_duty = 1;  // iterations of each period spent bursting

  /// Effective message-size multiplier at iteration `iter`.
  double burst_msg_scale(int iter) const {
    if (burst_factor <= 1.0 || burst_period <= 0) return msg_scale;
    return (iter % burst_period) < burst_duty ? msg_scale * burst_factor
                                              : msg_scale;
  }
};

using AppMain = std::function<void(mpi::Rank&, const AppConfig&)>;

struct AppInfo {
  std::string name;
  AppMain main;
  bool uses_any_source = false;  // needs the pattern API (Section 5.1)
  std::string description;
};

/// All registered workloads (the paper's six + the NAS skeletons).
const std::vector<AppInfo>& registry();

/// Lookup by name; aborts with the list of known names when absent.
const AppInfo& find_app(const std::string& name);

// ---- the paper's applications (Section 6.1) -----------------------------
void minife_main(mpi::Rank& rank, const AppConfig& cfg);
void minighost_main(mpi::Rank& rank, const AppConfig& cfg);
void amg_main(mpi::Rank& rank, const AppConfig& cfg);
void gtc_main(mpi::Rank& rank, const AppConfig& cfg);
void milc_main(mpi::Rank& rank, const AppConfig& cfg);
void cm1_main(mpi::Rank& rank, const AppConfig& cfg);

// ---- facade ports (living integration docs; src/apps/facade_ports.cpp) --
// The same skeletons driven through the four-call C-style facade
// (core/facade.hpp) instead of set_state_handlers + maybe_checkpoint.
void minife_facade_main(mpi::Rank& rank, const AppConfig& cfg);
void nas_bt_facade_main(mpi::Rank& rank, const AppConfig& cfg);

// ---- NAS skeletons for the HydEE comparison (Section 6.5) ---------------
void nas_bt_main(mpi::Rank& rank, const AppConfig& cfg);
void nas_lu_main(mpi::Rank& rank, const AppConfig& cfg);
void nas_mg_main(mpi::Rank& rank, const AppConfig& cfg);
void nas_sp_main(mpi::Rank& rank, const AppConfig& cfg);

// ---- shared helpers ------------------------------------------------------

/// Deterministic content hash for synthetic payloads: a pure function of the
/// identifying tuple so every valid execution sends the same sequence
/// (channel-determinism by construction).
uint64_t synthetic_hash(uint64_t a, uint64_t b, uint64_t c, uint64_t d);

/// Builds a payload: real bytes derived from `fill` in validate mode,
/// synthetic descriptor otherwise.
mpi::Payload make_payload(const AppConfig& cfg, uint64_t bytes, uint64_t hash,
                          const std::vector<double>* fill = nullptr);

/// Folds a reception into a running checksum (works for both payload modes).
void fold_checksum(uint64_t& acc, const mpi::RecvResult& rr);

/// Order-insensitive fold, for receptions whose service order is not fixed
/// by the algorithm (e.g. queries served from an ANY_SOURCE probe loop).
/// Channel-determinism fixes the *set* of such messages but not the order a
/// process handles them in, so a valid-execution checksum must commute.
void fold_checksum_commutative(uint64_t& acc, const mpi::RecvResult& rr);

/// Standard app state kept across checkpoints.
struct BaseState {
  int iter = 0;
  uint64_t checksum = 0;

  void serialize(util::ByteWriter& w) const {
    w.put<int>(iter);
    w.put<uint64_t>(checksum);
  }
  void restore(util::ByteReader& r) {
    iter = r.get<int>();
    checksum = r.get<uint64_t>();
  }
};

/// Publishes the final checksum (validate mode).
void publish_checksum(mpi::Rank& rank, const AppConfig& cfg, uint64_t checksum);

}  // namespace spbc::apps

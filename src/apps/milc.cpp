// MILC skeleton: SU(3) lattice gauge theory, 8^4 sites per MPI task on a 4D
// periodic torus (512 = 4x4x4x8).
//
// Per outer step: a few conjugate-gradient iterations, each gathering spinor
// fields from the 8 lattice directions. The gather receives use ANY_SOURCE
// with direction tags — the one pattern Section 6.1 says was annotated in
// MILC. The 4D torus makes every rank's cut traffic identical under block
// clustering, which is why Table 1 shows MILC's max equal to its average at
// every cluster count.

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "core/api.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kTagGatherBase = 50;  // +d for direction d in [0,8)
// 8^4 sites per task is a tiny local volume: a projected boundary face is
// only ~1.5 KB, and the dslash dominates — MILC logs the least after MiniFE
// in Table 1 (0.6 MB/s even under pure logging).
constexpr uint64_t kFaceBytes = 1500;
constexpr double kCgComputeSeconds = 13e-3;  // per CG iteration
constexpr int kCgPerStep = 3;

struct State : BaseState {
  std::vector<double> spinor;

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(spinor);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    spinor = r.get_vector<double>();
  }
};
}  // namespace

void milc_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid4D grid = Grid4D::balanced(rank.nranks(), /*periodic=*/true);
  const int me = rank.rank();

  // Direction d in [0,8): dimension d/2, orientation +/-1.
  std::array<int, 8> nbr{};
  for (int d = 0; d < 8; ++d) nbr[static_cast<size_t>(d)] =
      grid.neighbor(me, d / 2, (d % 2 == 0) ? +1 : -1);

  State st;
  if (cfg.validate) st.spinor.assign(48, 0.1 * (me + 1));
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  const core::pattern_id gather_pattern = core::DECLARE_PATTERN(rank);

  for (; st.iter < cfg.iters;) {
    for (int cg = 0; cg < kCgPerStep; ++cg) {
      // Gather from the 8 directions. The sender for direction d is known to
      // the torus but the legacy gather code receives anonymously with a
      // direction tag; the pattern id keeps iterations apart after a failure.
      core::BEGIN_ITERATION(rank, gather_pattern);
      std::vector<mpi::Request> recvs;
      recvs.reserve(8);
      for (int d = 0; d < 8; ++d) {
        if (nbr[static_cast<size_t>(d)] == me) continue;
        recvs.push_back(rank.irecv(mpi::kAnySource, kTagGatherBase + d, world));
      }
      const uint64_t bytes =
          static_cast<uint64_t>(static_cast<double>(kFaceBytes) * cfg.msg_scale);
      for (int d = 0; d < 8; ++d) {
        int to = nbr[static_cast<size_t>(d)];
        if (to == me) continue;
        // My +x face is the receiver's -x gather: flip the direction tag.
        int flip = (d % 2 == 0) ? d + 1 : d - 1;
        uint64_t h = synthetic_hash(me, to, (st.iter * kCgPerStep + cg), 0x31c0 + d);
        rank.isend(to, kTagGatherBase + flip, make_payload(cfg, bytes, h, &st.spinor),
                   world);
      }
      for (auto& rr : recvs) {
        rank.wait(rr);
        fold_checksum(st.checksum, rr.result());
      }
      rank.compute(kCgComputeSeconds * cfg.compute_scale);
      if (cfg.validate)
        for (auto& v : st.spinor) v = 0.97 * v + 1e-5;
      // The AHB relation between gather iterations comes from the CG dot
      // product, which already synchronizes everyone.
      double dot = cfg.validate ? st.spinor[0] : static_cast<double>(cg);
      double global = mpi::allreduce_scalar(rank, dot, mpi::ReduceOp::kSum, world);
      util::Fnv1a64 h;
      h.update_u64(st.checksum);
      h.update(&global, sizeof(global));
      st.checksum = h.digest();
      core::END_ITERATION(rank, gather_pattern);
    }

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

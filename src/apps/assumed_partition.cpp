#include "apps/assumed_partition.hpp"

#include "mpi/collectives.hpp"

namespace spbc::apps {

int assumed_partition_exchange(mpi::Rank& rank, const mpi::Comm& comm,
                               const AppConfig& cfg, const ApExchangeSpec& spec,
                               uint64_t& checksum) {
  const int me = comm.comm_rank(rank.rank());
  SPBC_ASSERT(me >= 0);
  const int n = comm.size();

  // Whom do I query? (local data); who queries me? (the termination count —
  // a pure function evaluated the same everywhere).
  std::vector<int> contacts = spec.contacts_of(me);
  int expected = 0;
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    for (int c : spec.contacts_of(r))
      if (c == me) ++expected;
  }

  // First loop of Figure 4: post reply receptions and send the queries.
  std::vector<mpi::Request> reply_recvs;
  reply_recvs.reserve(contacts.size());
  for (int c : contacts) {
    reply_recvs.push_back(rank.irecv(c, spec.tag_reply, comm));
    uint64_t h = synthetic_hash(static_cast<uint64_t>(me), static_cast<uint64_t>(c),
                                spec.hash_key, 1);
    rank.isend(c, spec.tag_query,
               make_payload(cfg, static_cast<uint64_t>(
                                     static_cast<double>(spec.query_bytes) * cfg.msg_scale),
                            h),
               comm);
  }

  // Probe loop: serve queries from anyone until all arrived.
  std::vector<mpi::Request> reply_sends;
  int served = 0;
  while (served < expected) {
    mpi::Status st = rank.probe(mpi::kAnySource, spec.tag_query, comm);
    mpi::RecvResult rr = rank.recv(st.source, spec.tag_query, comm);
    // Queries are served in arrival order, which is NOT fixed by the
    // algorithm (channel-determinism constrains channels, not the interleave
    // at the receiver) — fold commutatively.
    fold_checksum_commutative(checksum, rr);
    uint64_t h = synthetic_hash(static_cast<uint64_t>(me),
                                static_cast<uint64_t>(st.source), spec.hash_key, 2);
    reply_sends.push_back(rank.isend(
        st.source, spec.tag_reply,
        make_payload(cfg, static_cast<uint64_t>(
                              static_cast<double>(spec.reply_bytes) * cfg.msg_scale),
                     h),
        comm));
    ++served;
  }

  // Collect the replies to my own queries.
  for (auto& req : reply_recvs) {
    rank.wait(req);
    fold_checksum(checksum, req.result());
  }
  rank.waitall(reply_sends);

  // The always-happens-before relation between iterations (Section 5.1):
  // nobody starts iteration n+1 before everyone finished iteration n.
  if (spec.close_with_barrier) mpi::barrier(rank, comm);
  return served;
}

}  // namespace spbc::apps

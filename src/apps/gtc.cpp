// GTC skeleton: 3D gyrokinetic particle-in-cell with 1D toroidal domain
// decomposition and particle decomposition inside each domain (the paper
// ran micell=800, npartdom=8).
//
// Per step: particles that crossed a domain boundary are shifted to the
// toroidal neighbors — received with ANY_SOURCE (direction tags), the one
// pattern annotated in GTC — followed by a Poisson field solve reduction
// within the particle-decomposition group and a long push/charge phase.
// The ring cut explains GTC's Table 1 signature: the maximum per-process
// log rate is flat from 2 to 64 clusters (a ring edge crosses any cut
// exactly twice) while the average grows with the cluster count.

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "core/api.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kTagShiftLeft = 40;
constexpr int kTagShiftRight = 41;
// Shift buffers ~100 KB (800 particles/cell crossing), push ~110 ms.
constexpr uint64_t kShiftBytes = 100 * 1000;
constexpr double kPushSeconds = 110e-3;
constexpr int kPartdom = 8;  // ranks per particle-decomposition group

struct State : BaseState {
  std::vector<double> moments;

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(moments);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    moments = r.get_vector<double>();
  }
};
}  // namespace

void gtc_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  const int me = rank.rank();
  const int n = rank.nranks();
  SPBC_ASSERT_MSG(n % kPartdom == 0, "GTC needs nranks divisible by " << kPartdom);
  const int ntoroidal = n / kPartdom;

  // Rank layout: partdom groups are consecutive (same node), the toroidal
  // ring strides across groups. left/right = same partdom index, adjacent
  // toroidal domain.
  const int my_domain = me / kPartdom;
  const int my_pd = me % kPartdom;
  const int left = ((my_domain - 1 + ntoroidal) % ntoroidal) * kPartdom + my_pd;
  const int right = ((my_domain + 1) % ntoroidal) * kPartdom + my_pd;

  State st;
  if (cfg.validate) st.moments.assign(40, 1e-3 * me);
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  // Particle-decomposition sub-communicator for the field solve. The split
  // is a pure function of the rank, so it is rebuilt locally on restart
  // without any communication (survivors do not re-enter a collective).
  mpi::Comm partdom_comm = mpi::comm_split_pure(
      world, me, /*salt=*/0x67c,
      [](int wr, const void*) { return wr / kPartdom; },
      [](int wr, const void*) { return wr % kPartdom; }, nullptr);
  (void)my_pd;

  const core::pattern_id shift_pattern = core::DECLARE_PATTERN(rank);

  for (; st.iter < cfg.iters;) {
    // Charge deposition + push: the dominant cost.
    rank.compute(kPushSeconds * cfg.compute_scale);
    if (cfg.validate) {
      for (auto& v : st.moments) v = 0.9 * v + 1e-4;
    }

    // Particle shift: sources unknown a priori in the general shift code, so
    // receptions are anonymous; direction tags keep left/right apart.
    core::BEGIN_ITERATION(rank, shift_pattern);
    if (ntoroidal > 1) {
      mpi::Request rl = rank.irecv(mpi::kAnySource, kTagShiftLeft, world);
      mpi::Request rr = rank.irecv(mpi::kAnySource, kTagShiftRight, world);
      const uint64_t bytes =
          static_cast<uint64_t>(static_cast<double>(kShiftBytes) * cfg.msg_scale);
      // My rightward-moving particles arrive at `right` as its from-left msg.
      rank.isend(world.comm_rank(right), kTagShiftLeft,
                 make_payload(cfg, bytes,
                              synthetic_hash(me, right, st.iter, 0x67c0), &st.moments),
                 world);
      rank.isend(world.comm_rank(left), kTagShiftRight,
                 make_payload(cfg, bytes,
                              synthetic_hash(me, left, st.iter, 0x67c1), &st.moments),
                 world);
      rank.wait(rl);
      fold_checksum(st.checksum, rl.result());
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }
    // The AHB relation between shift iterations.
    mpi::barrier(rank, world);
    core::END_ITERATION(rank, shift_pattern);

    // Field solve within the particle-decomposition group.
    std::vector<double> field(16, cfg.validate ? st.moments[0] : 1.0);
    mpi::allreduce(rank, field, mpi::ReduceOp::kSum, partdom_comm);
    util::Fnv1a64 h;
    h.update_u64(st.checksum);
    h.update(field.data(), field.size() * sizeof(double));
    st.checksum = h.digest();

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

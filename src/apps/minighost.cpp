// MiniGhost skeleton: BSPMA finite-difference stencil with ghost-cell
// boundary exchange (the paper's most communication-intensive workload —
// Table 1 shows it logging the most data per process).
//
// Decomposition: balanced 3D process grid (8x8x8 at 512 ranks), bounded.
// Per iteration: 7-point-stencil halo exchange with up to 6 face neighbors
// (large faces), a stencil update over the local block, and a periodic
// global error reduction. Named sources only — MiniGhost needs no pattern
// annotations (Section 6.1 lists only MILC/MiniFE/AMG/GTC as modified).

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kTagHalo = 10;
// Calibration: 800^3 global over 512 ranks = 100^3 cells/rank; one face of
// doubles is 100*100*8 = 80 KB; the multi-variable stencil sweep dominates
// at ~75 ms per iteration, giving the ~6 MB/s per-process send rate the
// paper's 512-cluster row reports.
constexpr uint64_t kFaceBytes = 80 * 1000;
constexpr double kComputeSeconds = 75e-3;
constexpr int kReductionPeriod = 5;

struct State : BaseState {
  std::vector<double> field;  // validate-mode local block (flattened)

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(field);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    field = r.get_vector<double>();
  }
};
}  // namespace

void minighost_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid3D grid = Grid3D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  const std::vector<int> neighbors = grid.face_neighbors(me);

  State st;
  if (cfg.validate) {
    st.field.assign(64, static_cast<double>(me) + 1.0);
  }
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  for (; st.iter < cfg.iters;) {
    // Post all halo receptions, then send all faces (classic BSPMA order).
    std::vector<mpi::Request> recvs;
    recvs.reserve(neighbors.size());
    for (int nb : neighbors) recvs.push_back(rank.irecv(nb, kTagHalo, world));
    std::vector<mpi::Request> sends;
    sends.reserve(neighbors.size());
    const uint64_t bytes =
        static_cast<uint64_t>(static_cast<double>(kFaceBytes) * cfg.msg_scale);
    for (int nb : neighbors) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me), static_cast<uint64_t>(nb),
                                  static_cast<uint64_t>(st.iter), 0xb5);
      rank.isend(nb, kTagHalo, make_payload(cfg, bytes, h, &st.field), world);
    }
    for (auto& rr : recvs) {
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }

    // Stencil sweep over the local block.
    rank.compute(kComputeSeconds * cfg.compute_scale);
    if (cfg.validate) {
      double acc = 0;
      for (double v : st.field) acc += v;
      for (auto& v : st.field) v = 0.5 * v + 0.5 * acc / static_cast<double>(st.field.size());
    }

    // Periodic global error check.
    if ((st.iter + 1) % kReductionPeriod == 0) {
      double local = cfg.validate ? st.field[0] : static_cast<double>(st.iter);
      double global = mpi::allreduce_scalar(rank, local, mpi::ReduceOp::kSum, world);
      util::Fnv1a64 h;
      h.update_u64(st.checksum);
      h.update(&global, sizeof(global));
      st.checksum = h.digest();
    }

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

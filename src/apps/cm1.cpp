// CM1 skeleton: 3D nonhydrostatic atmospheric model with a 2D horizontal
// domain decomposition.
//
// Per iteration: east/west/north/south halo exchanges (tall skinny columns
// of the 1280x640x200 grid) and a heavy local physics/dynamics step — CM1
// spends well under 10% of its time communicating (Section 6.4), which caps
// its recovery speedup near 1.0. With block clustering, interior ranks of a
// cluster have no inter-cluster channel at all — the paper singles out such
// a rank as the limiter of CM1's recovery performance. No ANY_SOURCE.

#include "apps/app.hpp"
#include "apps/decomp.hpp"
#include "mpi/collectives.hpp"

namespace spbc::apps {

namespace {
constexpr int kTagHalo = 20;
// 1280x640x200 over 512 ranks (32x16 grid): local 40x40x200. An x-face is
// 40*200*8 bytes * ~few variables ~= 60 KB. ~85 ms of physics per step gives
// the ~2.8 MB/s pure-logging rate of Table 1's CM1 column.
constexpr uint64_t kFaceBytes = 60 * 1000;
constexpr double kComputeSeconds = 85e-3;

struct State : BaseState {
  std::vector<double> column;

  void serialize(util::ByteWriter& w) const {
    BaseState::serialize(w);
    w.put_vector(column);
  }
  void restore(util::ByteReader& r) {
    BaseState::restore(r);
    column = r.get_vector<double>();
  }
};
}  // namespace

void cm1_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid2D grid = Grid2D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  const std::vector<int> neighbors = grid.face_neighbors(me);

  State st;
  if (cfg.validate) st.column.assign(48, static_cast<double>(me) * 0.5);
  rank.set_state_handlers([&st](util::ByteWriter& w) { st.serialize(w); },
                          [&st](util::ByteReader& r) { st.restore(r); });
  if (rank.restarted()) rank.restore_app_state();

  for (; st.iter < cfg.iters;) {
    std::vector<mpi::Request> recvs;
    for (int nb : neighbors) recvs.push_back(rank.irecv(nb, kTagHalo, world));
    const uint64_t bytes =
        static_cast<uint64_t>(static_cast<double>(kFaceBytes) * cfg.msg_scale);
    for (int nb : neighbors) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me), static_cast<uint64_t>(nb),
                                  static_cast<uint64_t>(st.iter), 0xc1);
      rank.isend(nb, kTagHalo, make_payload(cfg, bytes, h, &st.column), world);
    }
    for (auto& rr : recvs) {
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }

    // Dynamics + microphysics: the dominant cost.
    rank.compute(kComputeSeconds * cfg.compute_scale);
    if (cfg.validate) {
      double acc = 1.0;
      for (auto& v : st.column) {
        v = 0.75 * v + 0.01 * acc;
        acc += v * 1e-6;
      }
    }

    ++st.iter;
    rank.maybe_checkpoint();
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

#pragma once
// The Figure 4 communication pattern: BoomerAMG's assumed-partition
// data-dependent exchange (Baker, Falgout, Yang [2]).
//
// Each process knows whom it must contact from local data, but knows neither
// who will contact it nor how many contacts to expect — so it probes with
// MPI_ANY_SOURCE on a dedicated tag and answers each query. This is the
// channel-deterministic-but-not-send-deterministic pattern that motivates
// SPBC's matching-by-id, and the pattern the API of Section 5.1 wraps in
// BEGIN_ITERATION / END_ITERATION.
//
// The global-termination algorithm (elided in the paper's listing) is
// replaced here by the expected-contact count, computable because contact
// sets are pure functions of (rank, key); the closing barrier builds the
// always-happens-before relation between successive iterations that the
// pattern API requires.

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/app.hpp"
#include "mpi/comm.hpp"
#include "mpi/rank.hpp"

namespace spbc::apps {

struct ApExchangeSpec {
  /// Pure function: contacts of rank r for this instance of the pattern.
  /// MUST be identical across ranks evaluating it (determinism and the
  /// expected-count computation depend on it).
  std::function<std::vector<int>(int rank)> contacts_of;
  int tag_query = 0;
  int tag_reply = 1;
  uint64_t query_bytes = 1024;
  uint64_t reply_bytes = 1024;
  uint64_t hash_key = 0;  // folded into payload hashes (e.g. level/iter)
  bool close_with_barrier = true;
};

/// Runs one instance of the pattern on `comm`. The caller is responsible for
/// wrapping it in BEGIN_ITERATION/END_ITERATION when used under SPBC.
/// Returns the number of queries served; folds traffic into `checksum`.
int assumed_partition_exchange(mpi::Rank& rank, const mpi::Comm& comm,
                               const AppConfig& cfg, const ApExchangeSpec& spec,
                               uint64_t& checksum);

}  // namespace spbc::apps

// MiniFE and NAS BT ported to the four-call facade (core/facade.hpp) —
// living integration documentation for adopting SPBC in an existing code.
//
// Diff against the pattern-API originals (minife.cpp / nas.cpp):
//   * set_state_handlers + restarted()/restore_app_state() are GONE. The
//     facade owns the app-state section of the snapshot; the app talks to it
//     only through named regions.
//   * rank.maybe_checkpoint() at the iteration boundary becomes the recipe
//       spbc_need_checkpoint -> spbc_start -> spbc_route* -> spbc_complete
//     The trigger question is answered by the same logic (control plane's
//     Young/Daly boundary, the static schedule, or a cluster peer's wave
//     marker running ahead), so facade apps pace — and JOIN — checkpoint
//     waves exactly like pattern-API apps.
//   * Startup asks spbc_have_restart instead of rank.restarted(); restored
//     regions come back via spbc_restart_read, byte-identical to what the
//     last committed session routed.
//   * Pattern annotations are ORTHOGONAL and stay: MiniFE's ANY_SOURCE setup
//     exchange still declares its pattern — the facade replaces the
//     checkpoint lifecycle, not id-based matching.

#include <cstring>
#include <vector>

#include "apps/app.hpp"
#include "apps/assumed_partition.hpp"
#include "apps/decomp.hpp"
#include "core/api.hpp"
#include "core/facade.hpp"
#include "mpi/collectives.hpp"
#include "util/assert.hpp"

namespace spbc::apps {

namespace {

using core::spbc_complete;
using core::spbc_have_restart;
using core::spbc_need_checkpoint;
using core::spbc_restart_read;
using core::spbc_route;
using core::spbc_start;
using core::SPBC_ERR_TRUNCATED;
using core::SPBC_SUCCESS;

/// Reads region `name` into `out`, growing it to fit — the standard
/// two-call sizing idiom for a C-style restart API: probe with capacity 0,
/// get SPBC_ERR_TRUNCATED plus the required size, then read for real.
void read_region(mpi::Rank& rank, const char* name,
                 std::vector<unsigned char>& out) {
  uint64_t need = 0;
  int rc = spbc_restart_read(rank, name, nullptr, &need);
  SPBC_ASSERT_MSG(rc == SPBC_ERR_TRUNCATED || (rc == SPBC_SUCCESS && need == 0),
                  "restart region '" << name << "': "
                                     << core::spbc_error_string(rc));
  out.resize(need);
  rc = spbc_restart_read(rank, name, out.data(), &need);
  SPBC_ASSERT_MSG(rc == SPBC_SUCCESS, core::spbc_error_string(rc));
}

/// The boundary recipe shared by both ports: ask, and if the protocol says
/// yes, commit `meta` and `payload` as the checkpoint. `force` skips the
/// ask (a phase boundary the app always wants captured).
void facade_boundary(mpi::Rank& rank, const util::ByteWriter& meta,
                     const std::vector<double>& payload, bool force = false) {
  int need = 0;
  if (!force) {
    int rc = spbc_need_checkpoint(rank, &need);
    SPBC_ASSERT_MSG(rc == SPBC_SUCCESS, core::spbc_error_string(rc));
    if (!need) return;
  }
  SPBC_ASSERT(spbc_start(rank) == SPBC_SUCCESS);
  char where[128];
  SPBC_ASSERT(spbc_route(rank, "meta", meta.bytes().data(), meta.size(), where,
                         sizeof where) == SPBC_SUCCESS);
  SPBC_ASSERT(spbc_route(rank, "field", payload.data(),
                         payload.size() * sizeof(double), nullptr,
                         0) == SPBC_SUCCESS);
  SPBC_ASSERT(spbc_complete(rank, /*valid=*/1) == SPBC_SUCCESS);
}

struct FacadeAppState {
  int iter = 0;
  uint64_t checksum = 0;
  bool setup_done = false;
  std::vector<double> field;  // validate-mode solution / grid fragment

  util::ByteWriter meta() const {
    util::ByteWriter w;
    w.put<int>(iter);
    w.put<uint64_t>(checksum);
    w.put<uint8_t>(setup_done ? 1 : 0);
    return w;
  }
  /// Restart: pull both regions back; no-op when there is no checkpoint
  /// (fresh start or sigma_0 rollback — the app re-runs from the top).
  void maybe_restore(mpi::Rank& rank) {
    int have = 0;
    SPBC_ASSERT(spbc_have_restart(rank, &have) == SPBC_SUCCESS);
    if (!have) return;
    std::vector<unsigned char> buf;
    read_region(rank, "meta", buf);
    util::ByteReader r(buf);
    iter = r.get<int>();
    checksum = r.get<uint64_t>();
    setup_done = r.get<uint8_t>() != 0;
    std::vector<unsigned char> fb;
    read_region(rank, "field", fb);
    SPBC_ASSERT(fb.size() % sizeof(double) == 0);
    field.resize(fb.size() / sizeof(double));
    if (!fb.empty()) std::memcpy(field.data(), fb.data(), fb.size());
  }
};

// Data-dependent contact set for the setup exchange: face neighbors plus two
// hash-derived "unstructured mesh" contacts (same shape as minife.cpp, its
// own salt).
std::vector<int> facade_contacts(int r, int n, const Grid3D& grid) {
  std::vector<int> c = grid.face_neighbors(r);
  for (uint64_t k = 0; k < 2; ++k) {
    int extra = static_cast<int>(
        synthetic_hash(static_cast<uint64_t>(r), k, 0xfacade, 0) %
        static_cast<uint64_t>(n));
    if (extra != r) c.push_back(extra);
  }
  return c;
}

}  // namespace

void minife_facade_main(mpi::Rank& rank, const AppConfig& cfg) {
  const mpi::Comm& world = rank.world();
  Grid3D grid = Grid3D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  const int n = rank.nranks();
  const std::vector<int> neighbors = grid.face_neighbors(me);

  // 1. Restart hook — replaces set_state_handlers + restore_app_state.
  FacadeAppState st;
  if (cfg.validate) st.field.assign(32, 1.0 / (1.0 + me));
  st.maybe_restore(rank);

  // 2. Setup: the ANY_SOURCE neighbor discovery keeps its pattern
  //    annotation — id-based matching is orthogonal to the facade.
  const core::pattern_id setup_pattern = core::DECLARE_PATTERN(rank);
  if (!st.setup_done) {
    core::BEGIN_ITERATION(rank, setup_pattern);
    ApExchangeSpec spec;
    spec.contacts_of = [n, &grid](int r) { return facade_contacts(r, n, grid); };
    spec.tag_query = 30;
    spec.tag_reply = 31;
    spec.query_bytes = 2 * 1000;
    spec.reply_bytes = 8 * 1000;
    spec.hash_key = 0xfade0;
    assumed_partition_exchange(rank, world, cfg, spec, st.checksum);
    core::END_ITERATION(rank, setup_pattern);
    rank.compute(10e-3 * cfg.compute_scale);  // matrix assembly
    st.setup_done = true;
    // Phase boundary the app always wants captured: setup is expensive.
    facade_boundary(rank, st.meta(), st.field, /*force=*/true);
  }

  // 3. CG loop — communication unchanged; only the boundary call differs.
  for (; st.iter < cfg.iters;) {
    std::vector<mpi::Request> recvs;
    for (int nb : neighbors) recvs.push_back(rank.irecv(nb, 32, world));
    const uint64_t bytes = static_cast<uint64_t>(
        6000.0 * cfg.burst_msg_scale(st.iter));
    for (int nb : neighbors) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me),
                                  static_cast<uint64_t>(nb),
                                  static_cast<uint64_t>(st.iter), 0xfade1);
      rank.isend(nb, 32, make_payload(cfg, bytes, h, &st.field), world);
    }
    for (auto& rr : recvs) {
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }

    rank.compute(55e-3 * cfg.compute_scale);  // sparse matvec dominates
    double local_dot = 0;
    if (cfg.validate) {
      for (auto& v : st.field) {
        v *= 0.999;
        local_dot += v * v;
      }
    } else {
      local_dot = static_cast<double>(st.iter + me);
    }
    double d1 = mpi::allreduce_scalar(rank, local_dot, mpi::ReduceOp::kSum, world);
    double d2 = mpi::allreduce_scalar(rank, d1 * 0.5, mpi::ReduceOp::kSum, world);
    util::Fnv1a64 h;
    h.update_u64(st.checksum);
    h.update(&d2, sizeof(d2));
    st.checksum = h.digest();

    ++st.iter;
    // 4. The four-call recipe at the iteration boundary.
    facade_boundary(rank, st.meta(), st.field);
  }
  publish_checksum(rank, cfg, st.checksum);
}

void nas_bt_facade_main(mpi::Rank& rank, const AppConfig& cfg) {
  // BT's ADI iteration (see nas.cpp): pipelined line sweeps along both grid
  // dimensions, then a boundary face exchange — checkpointed via the facade.
  const mpi::Comm& world = rank.world();
  Grid2D grid = Grid2D::balanced(rank.nranks(), /*periodic=*/false);
  const int me = rank.rank();
  constexpr uint64_t kSweepBytes = 40 * 1000;
  constexpr uint64_t kFaceBytes = 30 * 1000;

  FacadeAppState st;
  if (cfg.validate) st.field.assign(32, 1.0 + 0.01 * me);
  st.maybe_restore(rank);

  auto sweep = [&](int dim, int dir, int tag, uint64_t salt) {
    int pred = grid.neighbor(me, dim, -dir);
    int succ = grid.neighbor(me, dim, dir);
    if (pred >= 0) fold_checksum(st.checksum, rank.recv(pred, tag, world));
    rank.compute(6e-3 * cfg.compute_scale);
    if (succ >= 0) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me),
                                  static_cast<uint64_t>(succ),
                                  static_cast<uint64_t>(st.iter), salt);
      rank.send(succ, tag,
                make_payload(cfg,
                             static_cast<uint64_t>(
                                 static_cast<double>(kSweepBytes) *
                                 cfg.burst_msg_scale(st.iter)),
                             h, &st.field),
                world);
    }
  };

  for (; st.iter < cfg.iters;) {
    for (int dim = 0; dim < 2; ++dim) {
      sweep(dim, +1, 70 + dim, 0xbf00 + static_cast<uint64_t>(dim));
      sweep(dim, -1, 72 + dim, 0xbf10 + static_cast<uint64_t>(dim));
    }
    // Boundary face exchange.
    std::vector<int> nbrs = grid.face_neighbors(me);
    std::vector<mpi::Request> recvs;
    for (int nb : nbrs) recvs.push_back(rank.irecv(nb, 75, world));
    for (int nb : nbrs) {
      uint64_t h = synthetic_hash(static_cast<uint64_t>(me),
                                  static_cast<uint64_t>(nb),
                                  static_cast<uint64_t>(st.iter), 0xbf20);
      rank.isend(nb, 75,
                 make_payload(cfg,
                              static_cast<uint64_t>(
                                  static_cast<double>(kFaceBytes) *
                                  cfg.burst_msg_scale(st.iter)),
                              h, &st.field),
                 world);
    }
    for (auto& rr : recvs) {
      rank.wait(rr);
      fold_checksum(st.checksum, rr.result());
    }
    rank.compute(18e-3 * cfg.compute_scale);
    if (cfg.validate)
      for (auto& v : st.field) v = 0.95 * v + 0.001;
    ++st.iter;
    facade_boundary(rank, st.meta(), st.field);
  }
  publish_checksum(rank, cfg, st.checksum);
}

}  // namespace spbc::apps

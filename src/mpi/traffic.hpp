#pragma once
// Flat per-channel traffic accumulator — the clustering tool's input.
//
// Machine::record_traffic runs on every message send, so in tracing runs the
// per-channel counter is a hot-path structure. The previous
// std::map<std::pair<int,int>, uint64_t> paid a red-black-tree walk plus a
// node allocation per new channel; this is a per-source open-addressed table
// keyed by destination rank (power-of-two capacity, linear probing). An HPC
// rank talks to a handful of peers, so each row stays small, and a repeat
// send hits its slot in O(1) with no allocation.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace spbc::mpi {

class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  explicit TrafficMatrix(int nranks) { reset(nranks); }

  void reset(int nranks) {
    SPBC_ASSERT(nranks >= 0);
    rows_.assign(static_cast<size_t>(nranks), Row{});
  }

  int nranks() const { return static_cast<int>(rows_.size()); }
  // Summed on read: the running total lives in per-source rows so concurrent
  // shard threads (each owning a disjoint set of source ranks) never share a
  // cache line, let alone a counter.
  uint64_t total_bytes() const {
    uint64_t t = 0;
    for (const Row& r : rows_) t += r.total;
    return t;
  }
  bool empty() const { return total_bytes() == 0; }

  /// Hot path: accumulates `bytes` on the (src, dst) channel.
  void add(int src, int dst, uint64_t bytes) {
    SPBC_ASSERT(src >= 0 && src < nranks() && dst >= 0 && dst < nranks());
    Row& row = rows_[static_cast<size_t>(src)];
    if (row.slots.empty()) row.grow(kInitialCapacity);
    // Grow at ~70% load so probes stay short.
    if ((row.used + 1) * 10 > row.slots.size() * 7)
      row.grow(row.slots.size() * 2);
    Slot& s = row.slots[row.probe(dst)];
    if (s.dst < 0) {
      s.dst = dst;
      ++row.used;
    }
    s.bytes += bytes;
    row.total += bytes;
  }

  uint64_t bytes(int src, int dst) const {
    SPBC_ASSERT(src >= 0 && src < nranks() && dst >= 0 && dst < nranks());
    const Row& row = rows_[static_cast<size_t>(src)];
    if (row.slots.empty()) return 0;
    const Slot& s = row.slots[row.probe(dst)];
    return s.dst < 0 ? 0 : s.bytes;
  }

  /// Visits every non-zero channel as fn(src, dst, bytes). Destination order
  /// within a source is the table's probe order (unspecified); callers that
  /// need determinism sort (CommGraph does).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int src = 0; src < nranks(); ++src) {
      for (const Slot& s : rows_[static_cast<size_t>(src)].slots)
        if (s.dst >= 0) fn(src, s.dst, s.bytes);
    }
  }

  /// Compatibility view for callers that still want the ordered map.
  std::map<std::pair<int, int>, uint64_t> as_map() const {
    std::map<std::pair<int, int>, uint64_t> out;
    for_each([&out](int src, int dst, uint64_t b) { out[{src, dst}] = b; });
    return out;
  }

 private:
  static constexpr size_t kInitialCapacity = 8;  // power of two

  struct Slot {
    int32_t dst = -1;
    uint64_t bytes = 0;
  };

  struct Row {
    std::vector<Slot> slots;  // power-of-two size
    size_t used = 0;
    uint64_t total = 0;  // sum of this source's bytes

    static size_t hash(int dst) {
      return static_cast<size_t>(static_cast<uint32_t>(dst) * 2654435761u);
    }

    /// Index of dst's slot, or of the empty slot where it would insert.
    size_t probe(int dst) const {
      size_t mask = slots.size() - 1;
      size_t i = hash(dst) & mask;
      while (slots[i].dst >= 0 && slots[i].dst != dst) i = (i + 1) & mask;
      return i;
    }

    void grow(size_t capacity) {
      std::vector<Slot> old = std::move(slots);
      slots.assign(capacity, Slot{});
      for (const Slot& s : old) {
        if (s.dst < 0) continue;
        slots[probe(s.dst)] = s;
      }
    }
  };

  std::vector<Row> rows_;
};

}  // namespace spbc::mpi

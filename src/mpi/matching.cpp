#include "mpi/matching.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spbc::mpi {

bool MatchEngine::matches(const RequestState& req, const Envelope& env,
                          bool match_pattern_ids) {
  if (req.ctx != env.ctx) return false;
  if (req.match_src != kAnySource && req.match_src != env.src) return false;
  if (req.match_tag != kAnyTag && req.match_tag != env.tag) return false;
  if (req.bound_seq != 0 && req.bound_seq != env.seqnum) return false;
  if (match_pattern_ids && !(req.pid == env.pid)) return false;
  return true;
}

std::shared_ptr<RequestState> MatchEngine::on_envelope(const Envelope& env,
                                                       Payload& payload,
                                                       bool payload_ready,
                                                       uint64_t sender_req) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(**it, env, match_pattern_ids_)) {
      auto req = *it;
      posted_.erase(it);
      return req;
    }
  }
  UnexpectedMsg um;
  um.env = env;
  um.payload = std::move(payload);
  um.payload_ready = payload_ready;
  um.sender_req = sender_req;
  unexpected_.push_back(std::move(um));
  return nullptr;
}

MatchEngine::PostResult MatchEngine::on_post(std::shared_ptr<RequestState> req) {
  PostResult res;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(*req, it->env, match_pattern_ids_)) {
      res.matched = true;
      res.msg = std::move(*it);
      unexpected_.erase(it);
      return res;
    }
  }
  posted_.push_back(std::move(req));
  return res;
}

void MatchEngine::repost(std::shared_ptr<RequestState> req) {
  auto it = posted_.begin();
  while (it != posted_.end() && (*it)->post_seq < req->post_seq) ++it;
  posted_.insert(it, std::move(req));
}

size_t MatchEngine::purge_pending_rts_from(int src) {
  return purge_pending_rts_if([src](int s) { return s == src; });
}

size_t MatchEngine::purge_pending_rts_if(const std::function<bool(int)>& pred) {
  size_t purged = 0;
  for (auto it = unexpected_.begin(); it != unexpected_.end();) {
    if (!it->payload_ready && pred(it->env.src)) {
      it = unexpected_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

MatchEngine::PostResult MatchEngine::take_bound(const RequestState& req) {
  PostResult res;
  SPBC_ASSERT_MSG(req.bound_seq != 0, "take_bound on unbound request");
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(req, it->env, match_pattern_ids_)) {
      res.matched = true;
      res.msg = std::move(*it);
      unexpected_.erase(it);
      return res;
    }
  }
  return res;
}

bool MatchEngine::iprobe(const RequestState& probe_req, Status* status) const {
  for (const auto& um : unexpected_) {
    if (matches(probe_req, um.env, match_pattern_ids_)) {
      if (status) {
        status->source = um.env.src;
        status->tag = um.env.tag;
        status->bytes = um.env.bytes;
      }
      return true;
    }
  }
  return false;
}

bool MatchEngine::complete_unexpected_payload(uint64_t sender_req, int src,
                                              Payload payload) {
  for (auto& um : unexpected_) {
    if (um.sender_req == sender_req && um.env.src == src && !um.payload_ready) {
      um.payload = std::move(payload);
      um.payload_ready = true;
      return true;
    }
  }
  return false;
}

bool MatchEngine::adopt_pending_rts(const Envelope& env, Payload& payload,
                                    uint64_t* stale_req) {
  for (auto& um : unexpected_) {
    if (!um.payload_ready && um.env.src == env.src && um.env.ctx == env.ctx &&
        um.env.tag == env.tag && um.env.seqnum == env.seqnum) {
      *stale_req = um.sender_req;
      um.payload = std::move(payload);
      um.payload_ready = true;
      um.sender_req = 0;
      return true;
    }
  }
  return false;
}

void MatchEngine::cancel_posted(const RequestState* req) {
  posted_.erase(std::remove_if(posted_.begin(), posted_.end(),
                               [req](const auto& p) { return p.get() == req; }),
                posted_.end());
}

void MatchEngine::serialize(util::ByteWriter& w) const {
  SPBC_ASSERT_MSG(posted_.empty(),
                  "checkpoint with outstanding reception requests is not "
                  "supported (application-level checkpoint restriction)");
  uint64_t ready = 0;
  for (const auto& um : unexpected_)
    if (um.payload_ready) ++ready;
  w.put<uint64_t>(ready);
  for (const auto& um : unexpected_) {
    if (!um.payload_ready) continue;
    w.put(um.env);
    w.put<uint64_t>(um.payload.bytes);
    w.put<uint64_t>(um.payload.hash);
    w.put_vector(um.payload.data);
  }
}

void MatchEngine::restore(util::ByteReader& r) {
  posted_.clear();
  unexpected_.clear();
  auto n = r.get<uint64_t>();
  for (uint64_t i = 0; i < n; ++i) {
    UnexpectedMsg um;
    um.env = r.get<Envelope>();
    um.payload.bytes = r.get<uint64_t>();
    um.payload.hash = r.get<uint64_t>();
    um.payload.data = r.get_vector<unsigned char>();
    um.payload_ready = true;
    unexpected_.push_back(std::move(um));
  }
}

void MatchEngine::clear() {
  posted_.clear();
  unexpected_.clear();
}

}  // namespace spbc::mpi

#pragma once
// The Machine: one simulated cluster run.
//
// Owns the discrete-event engine, network, topology, all Ranks, the active
// fault-tolerance protocol, and checkpoint storage. Responsible for:
//   * launching one fiber per rank running the application main,
//   * transporting data (eager / rendezvous) and control messages,
//   * crash semantics: failure injection kills a rank's fiber and bumps its
//     incarnation; in-flight messages addressed to the old incarnation are
//     dropped (they were in the wire when the process died),
//   * respawning ranks from checkpoints during recovery,
//   * recording per-channel traffic (clustering tool input) and recovery
//     progress (rework-time measurement for Fig. 5/6).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/protocol_hooks.hpp"
#include "mpi/rank.hpp"
#include "mpi/traffic.hpp"
#include "mpi/types.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/topology.hpp"
#include "util/pool.hpp"

namespace spbc::mpi {

struct MachineConfig {
  int nranks = 8;
  int ranks_per_node = 8;
  /// Hot-spare nodes appended after the compute nodes: idle hardware (NIC +
  /// node-local storage, no ranks) a permanent node loss swaps in. 0 keeps
  /// the machine byte-identical to the pre-elastic layout.
  int spare_nodes = 0;
  /// Severity of the two-argument inject_failure() overload. Elastic suites
  /// flip this to kNodePermanent to turn every scripted failure into a
  /// never-returning node loss without touching the injection sites.
  FailureKind default_failure_kind = FailureKind::kNodeLoss;
  net::NetworkParams net;
  uint64_t eager_threshold = 64 * 1024;  // bytes; above -> rendezvous
  sim::Time poll_overhead = sim::nsec(120);  // test/iprobe CPU cost
  // Section 7 extension (hybrid MPI+threads, MPI_THREAD_MULTIPLE): when
  // multiple threads of one process send over the same channel with distinct
  // tags, the per-channel total send order is lost but each (channel, tag)
  // sub-stream can stay deterministic. This switch moves sequence numbers,
  // received-windows, and replay ordering from (src,dst,comm) channels to
  // (src,dst,comm,tag) streams — the paper's proposed fix ("associate a
  // sequence number with each (channel,tag) tuple").
  bool seq_per_tag = false;
  // OS/system noise: each compute block is stretched by up to this fraction,
  // as a pure function of (seed, rank, op index) — identical when the block
  // is re-executed during recovery. Real clusters have this noise; it is
  // what makes processes wait on inter-cluster messages in failure-free
  // runs, and removing those waits is where SPBC's recovery speedup
  // (Fig. 5) comes from.
  double compute_noise_frac = 0.0;
  sim::Time failure_detection_delay = sim::msec(1.0);
  sim::Time restart_delay = sim::msec(5.0);  // process relaunch + ckpt read
  size_t fiber_stack_bytes = 256 * 1024;
  uint64_t seed = 1;
  bool record_send_trace = false;  // per-channel send hashes (determinism checks)
  bool abort_on_deadlock = true;
  // Table 1's 512-cluster row (pure message logging) intentionally violates
  // the one-cluster-per-node rule; benches flip this off for that row.
  bool enforce_node_colocation = true;
  // Scalable recovery announces. Algorithm 1 (lines 19-20) posts one
  // Rollback per (recovering rank, outside rank) pair — O(cluster x world)
  // control messages per failure, which is what capped MTBF ablations at a
  // few thousand ranks. When set, the recovering cluster's leader posts one
  // aggregated kClusterRollback per outside rank (members' windows gathered
  // at restore; almost every destination's entry list is empty) and peers
  // reply only toward members they actually hold received-windows for.
  // Off by default: the pairwise path is the paper's literal algorithm and
  // the pinned CI rows are recorded against its message timing.
  bool aggregate_rollbacks = false;
  // Scalable checkpoint-wave markers. The explicit "I snapshotted epoch E"
  // markers are an all-to-all broadcast within the cluster — O(members^2)
  // control messages per wave, the dominant traffic of the whole simulation
  // past a few thousand ranks (a coordinated wave's "cluster" is every
  // rank). When set, the marker floods over the same binomial tree the
  // wave's completion reduction uses: each member forwards a wave's epoch
  // to its tree neighbors at most once — O(members) messages, same
  // eventual-delivery guarantee (markers are a hint; nothing blocks on
  // them). Off by default for the same pinned-row reason as above.
  bool tree_ckpt_markers = false;
  // Sharded event engine (100k-rank ablations). 1 = legacy single event
  // queue, byte-identical to the pre-shard engine. Any other value keys the
  // engine by cluster (one logical shard per cluster, fixed by the workload)
  // and uses this many physical queues: 0 = one per cluster, N = at most N.
  // Event order is a function of the cluster map only — every engine_shards
  // != 1 setting produces the same trajectory. Requires set_cluster_of().
  int engine_shards = 1;
  // Worker threads for the sharded executor (conservative lookahead windows).
  // > 1 requires engine_shards != 1 and node-colocated clusters.
  int engine_threads = 1;
  // Straggler / slow-node skew (hostile workload matrix; DESIGN.md §16):
  // every compute block on a straggler node is stretched by straggler_factor.
  // Straggler nodes are picked deterministically from straggler_seed — a
  // straggler_frac fraction of the compute nodes — so every shard/thread
  // layout and every re-execution sees the same slow set. The extra time is
  // accounted in RankProfile::time_straggler_stall. factor <= 1 or frac <= 0
  // disables the shape and keeps compute() byte-identical.
  double straggler_factor = 1.0;
  double straggler_frac = 0.0;
  uint64_t straggler_seed = 0;
};

/// Outcome of a Machine::run().
struct RunResult {
  sim::Time finish_time = 0;
  bool deadlocked = false;
  bool completed = false;  // all rank mains returned
};

/// Recovery progress record for one injected failure.
struct RecoveryRecord {
  int failed_cluster = -1;
  sim::Time failure_time = 0;
  sim::Time restart_time = 0;   // fibers respawned (ckpt restored)
  sim::Time caught_up_time = 0;  // last recovering rank reached pre-failure op
  sim::Time checkpoint_time = 0;  // virtual time of the restored checkpoint
  // Per failed rank: pre-failure progress (ops + partial compute block).
  std::map<int, Rank::Progress> target_ops;
  std::map<int, sim::Time> catch_up;  // per failed rank: time it caught up
  bool complete() const { return !target_ops.empty() && catch_up.size() == target_ops.size(); }
  /// Rework time: rollback to full catch-up of the slowest rank.
  sim::Time rework() const { return caught_up_time - restart_time; }
};

class Machine {
 public:
  using AppFn = std::function<void(Rank&)>;

  Machine(MachineConfig cfg, std::unique_ptr<ProtocolHooks> protocol);
  ~Machine();

  // ---- configuration / wiring ----------------------------------------
  const MachineConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  net::Network& network() { return net_; }
  const sim::Topology& topology() const { return topo_; }
  ProtocolHooks& protocol() { return *protocol_; }
  const Comm& world() const { return world_; }

  int nranks() const { return cfg_.nranks; }
  Rank& rank(int r);

  /// PHYSICAL node currently hosting `rank`. Starts as the topology's block
  /// layout; spare-node hot-swap and shrunk restart rebind it. Everything
  /// that models hardware (NIC routing, storage residency, failure blast
  /// radius) must use this, not Topology::node_of — the latter stays the
  /// LOGICAL layout that redundancy-group/slot arithmetic is keyed by.
  int node_of(int rank) const {
    return node_of_rank_[static_cast<size_t>(rank)];
  }
  /// Spares still in the pool (not yet swapped in).
  int spares_available() const { return static_cast<int>(spare_pool_.size()); }
  /// PHYSICAL node `node` is a straggler (MachineConfig::straggler_*): its
  /// compute blocks run straggler_factor slower. Fixed at construction —
  /// deterministic across shard/thread layouts and re-executions.
  bool straggler_node(int node) const {
    return straggler_node_[static_cast<size_t>(node)] != 0;
  }
  /// A permanently-dead node left service (retire_node).
  bool node_retired(int node) const {
    return node_retired_[static_cast<size_t>(node)] != 0;
  }
  /// Rank is permanently dead and awaiting its elastic rebind+respawn: sends
  /// toward it complete as no-ops instead of spinning retries at a rendezvous
  /// that will never answer. Cleared when the rank respawns.
  bool tombstoned(int rank) const {
    return tombstoned_[static_cast<size_t>(rank)] != 0;
  }

  /// Serial context: a node died permanently. Its resident ranks are
  /// tombstoned and rebound — all onto the next pooled spare (hot-swap), or,
  /// with the pool empty, onto the least-loaded surviving node (shrunk
  /// restart; same-cluster nodes preferred to preserve colocation). The
  /// caller must have invalidated the OLD node's staged copies first: after
  /// this call the residents' storage residency is computed against the new
  /// binding.
  void retire_node(int node);

  /// Serial context: move `rank` to cluster `cluster` (streaming
  /// repartitioner flip). Event routing keeps the rank's original shard —
  /// the shard map is frozen at set_cluster_of so fixed-seed runs stay
  /// bit-identical across layouts while membership changes.
  void migrate_rank(int rank, int cluster);

  uint64_t spare_swaps() const { return spare_swaps_; }
  uint64_t shrink_restarts() const { return shrink_restarts_; }
  uint64_t tombstone_drops() const {
    return tombstone_drops_.load(std::memory_order_relaxed);
  }

  /// Cluster mapping used by hierarchical protocols; identity (one cluster)
  /// when unset. Must be set before launch().
  void set_cluster_of(std::vector<int> cluster_of);
  int cluster_of(int rank) const;
  int nclusters() const { return nclusters_; }
  std::vector<int> ranks_in_cluster(int cluster) const;

  // ---- execution -------------------------------------------------------
  /// Spawns all rank fibers running `app`.
  void launch(AppFn app);

  /// Runs the simulation to completion. Returns timing + deadlock status.
  RunResult run();

  /// Schedules a crash of `victim_rank`'s cluster at virtual time t. The
  /// two-argument form is a node loss (processes and node-local storage);
  /// the kind overload can inject process-only failures whose node storage
  /// survives the restart.
  void inject_failure(sim::Time t, int victim_rank);
  void inject_failure(sim::Time t, int victim_rank, FailureKind kind);

  // ---- transport (called by Rank) --------------------------------------
  /// Data send; chooses eager or rendezvous by payload size. `on_complete`
  /// fires when the send buffer is reusable (MPI completion semantics).
  void transport_send(Rank& sender, const Envelope& env, Payload payload,
                      std::function<void()> on_complete);

  /// Protocol control message (Rollback, lastMessage, checkpoint coordination,
  /// HydEE grants...). Small fixed wire size.
  void send_control(int src, int dst, ControlMsg msg);

  /// Replay path: re-sends a logged message (event context, no fiber).
  /// `on_complete` fires when the replayed send finishes injecting.
  void replay_send(int src, const Envelope& env, const Payload& payload,
                   std::function<void()> on_complete);

  // ---- crash / recovery mechanics (called by protocols) ----------------
  uint32_t incarnation(int rank) const { return incarnation_[rank]; }

  /// Kills a rank's fiber now (stack unwinds via FiberKilled) and bumps its
  /// incarnation so in-flight messages to it are dropped.
  void kill_rank(int rank);

  /// Respawns a rank's fiber. With `restarted=true` the app main sees
  /// restarted()==true and pulls its state back via restore_app_state();
  /// with false it re-runs from the initial state (rollback to sigma_0 when
  /// no checkpoint exists yet). Runtime state must have been restored by the
  /// caller beforehand.
  void respawn_rank(int rank, bool restarted);

  /// Checkpointed application-state bytes parked between restore (event
  /// context) and the respawned app main pulling them (fiber context).
  void set_pending_app_state(int rank, std::vector<unsigned char> bytes);
  std::vector<unsigned char> take_pending_app_state(int rank);

  /// Removes and returns pending rendezvous sends from `src` to `dst` whose
  /// handshake died with a previous incarnation of `dst` (the peer crashed
  /// mid-rendezvous, so its CTS will never come). The protocol completes
  /// their application requests when the corresponding logged messages
  /// finish replaying. Handshakes addressed to the CURRENT incarnation are
  /// left alone: a Rollback can also be a re-announcement during overlapping
  /// recoveries, and orphaning a live handshake would park the sender on a
  /// CTS the receiver still owes it.
  struct OrphanSend {
    Envelope env;
    std::function<void()> on_complete;
  };
  std::vector<OrphanSend> take_rendezvous_to(int dst, int src);
  /// Batched take_rendezvous_to: one pass over `src`'s pending rendezvous
  /// handshakes removes every one addressed to a dead incarnation of a
  /// destination satisfying `pred`, grouped by destination (aggregated
  /// rollbacks orphan toward a whole recovering cluster at once).
  std::map<int, std::vector<OrphanSend>> take_rendezvous_to_if(
      const std::function<bool(int)>& pred, int src);

  bool rank_alive(int rank) const { return alive_[rank]; }

  // ---- intra-cluster in-flight tracking (checkpoint-wave completion) ----
  /// Count of this rank's in-flight intra-cluster data transfers. A
  /// rendezvous send counts from RTS until its payload lands (or a
  /// discard-CTS completes it), so the count covers every message that could
  /// cross a checkpoint cut.
  uint64_t outstanding_intra_sends(int rank) const { return intra_outstanding_[rank]; }

  /// Registers a one-shot callback fired when `rank`'s intra-cluster
  /// in-flight count reaches zero (immediately if already drained). The
  /// marker-based checkpoint wave uses this to emit its completion message
  /// without parking the fiber. Watchers are dropped when the rank is killed.
  void notify_when_intra_drained(int rank, std::function<void()> fn);

  // ---- measurement -------------------------------------------------------
  /// Per-channel world-level traffic matrix (bytes), for the clustering tool.
  /// Flat open-addressed storage — record_traffic runs on every send.
  const TrafficMatrix& traffic() const { return traffic_; }

  /// Compatibility view of traffic() as an ordered map (built on demand).
  std::map<std::pair<int, int>, uint64_t> traffic_bytes() const {
    return traffic_.as_map();
  }

  /// Per-channel send trace hashes (determinism checker). Stored in
  /// per-source rows (each owned by the source rank's shard); merged into
  /// one ordered map on demand — ChannelKey sorts by src first, so the merge
  /// is a concatenation.
  std::map<ChannelKey, std::vector<uint64_t>> send_trace() const;

  const std::vector<RecoveryRecord>& recoveries() const { return recoveries_; }
  RecoveryRecord* active_recovery(int cluster);

  /// Called by protocols when a cluster's recovery begins (fibers respawned).
  void begin_recovery_record(int cluster, sim::Time failure_time,
                             sim::Time checkpoint_time,
                             std::map<int, Rank::Progress> target_ops);
  /// Called from rank fibers (via op-counter watch) when caught up.
  void note_catch_up(int rank);

  /// Total messages dropped by the incarnation filter (in flight at crash).
  uint64_t dropped_in_flight() const {
    return dropped_in_flight_.load(std::memory_order_relaxed);
  }

  /// Diagnostics: envelopes of sends parked in the rendezvous handshake.
  std::vector<Envelope> pending_rendezvous_envelopes() const;

  // Debug-only tag (never hashed into traces or used for ordering), so a
  // relaxed counter keeps it unique across shard threads.
  uint64_t fresh_uid() { return uid_.fetch_add(1, std::memory_order_relaxed) + 1; }

 private:
  void deliver_data(int dst, Envelope env, Payload payload, bool payload_ready,
                    uint64_t sender_req);
  void handle_control(int dst, const ControlMsg& msg);
  void record_traffic(const Envelope& env);
  void note_intra_send_landed(int src);
  /// Event-routing shard of a rank: the cluster map frozen at
  /// set_cluster_of (migrations must not move a rank's events between
  /// shards mid-run — event order would depend on migration timing).
  int shard_of(int rank) const {
    return shard_of_rank_.empty() ? cluster_of(rank)
                                  : shard_of_rank_[static_cast<size_t>(rank)];
  }

  MachineConfig cfg_;
  sim::Engine engine_;
  sim::Topology topo_;
  net::Network net_;
  std::unique_ptr<ProtocolHooks> protocol_;
  Comm world_;

  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<uint32_t> incarnation_;
  std::vector<bool> alive_;
  std::vector<uint64_t> intra_outstanding_;
  std::vector<std::vector<std::function<void()>>> intra_drain_watchers_;
  std::vector<int> cluster_of_;
  int nclusters_ = 1;
  // Frozen rank -> shard snapshot (see shard_of); empty until set_cluster_of.
  std::vector<int> shard_of_rank_;
  // Dynamic rank -> physical node binding (see node_of).
  std::vector<int> node_of_rank_;
  // Per-physical-node straggler flag (see straggler_node).
  std::vector<uint8_t> straggler_node_;
  // Spare nodes not yet swapped in, FIFO (ids in [topo.nodes(), total)).
  std::vector<int> spare_pool_;
  std::vector<uint8_t> node_retired_;  // indexed by node id
  std::vector<uint8_t> tombstoned_;    // indexed by rank
  uint64_t spare_swaps_ = 0;           // serial context only
  uint64_t shrink_restarts_ = 0;       // serial context only
  std::atomic<uint64_t> tombstone_drops_{0};

  AppFn app_;

  // Rendezvous bookkeeping at the sender: req id -> (env, payload, completion).
  // One row per source rank: transport_send fills it from the sender's fiber
  // and the CTS drains it at the sender again, so a row is only ever touched
  // by its source rank's shard (kill-time purges run in serial context).
  struct PendingRendezvous {
    Envelope env;
    Payload payload;
    std::function<void()> on_complete;
    uint32_t dst_inc = 0;  // destination incarnation the RTS was addressed to
  };
  std::vector<std::map<uint64_t, PendingRendezvous>> rendezvous_;
  std::vector<uint64_t> next_rendezvous_id_;  // per source rank

  // Pooled per-message blocks: one MsgNode per in-flight data message (eager,
  // rendezvous payload leg, replay) and one CtrlNode per control message.
  // Arrival lambdas capture {this, node*} — 16 bytes, inside std::function's
  // small-buffer — so the steady-state transport performs no allocation.
  struct MsgNode {
    Envelope env;
    Payload payload;
    std::function<void()> on_complete;  // replay path only
    uint32_t inc = 0;      // destination incarnation at submit
    uint32_t src_inc = 0;  // sender incarnation at submit
    bool intra = false;
    uint64_t req = 0;  // rendezvous request id (payload leg)
  };
  struct CtrlNode {
    ControlMsg msg;
    uint32_t inc = 0;
    int dst = 0;
  };
  util::ObjectPool<MsgNode> msg_pool_;
  util::ObjectPool<CtrlNode> ctrl_pool_;

  TrafficMatrix traffic_;
  // Per-source send-trace rows (see send_trace()).
  std::vector<std::map<ChannelKey, std::vector<uint64_t>>> send_trace_rows_;
  std::vector<RecoveryRecord> recoveries_;
  // cluster -> index into recoveries_, -1 = none. Sized at set_cluster_of;
  // slot c is written from serial context or cluster c's own shard only.
  std::vector<ptrdiff_t> active_recovery_idx_;

  // Checkpointed app state parked between restore and respawn, one slot per
  // rank (empty = none).
  std::vector<std::vector<unsigned char>> pending_app_state_;

  std::atomic<uint64_t> uid_{0};
  std::atomic<uint64_t> dropped_in_flight_{0};
};

}  // namespace spbc::mpi

#pragma once
// Per-process MPI runtime: the object workload code programs against.
//
// One Rank exists per simulated MPI process. Application main functions
// receive a Rank& and use its point-to-point operations, collectives (see
// collectives.hpp), pattern API (Section 5.1), compute() to model local work,
// and maybe_checkpoint() at iteration boundaries.
//
// The Rank also carries the runtime state a real MPI library would hold —
// per-channel send sequence numbers, received-windows, the matching engine,
// pattern counters — all of which is serialized into checkpoints so recovery
// restores an exact MPI-layer state.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/matching.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace spbc::mpi {

class Machine;

/// Pattern API state (Section 5.1): per-pattern iteration counters plus the
/// currently active pattern. DECLARE_PATTERN / BEGIN_ITERATION /
/// END_ITERATION are purely local (no communication).
struct PatternBook {
  std::vector<uint32_t> iteration;  // per declared pattern, index 0 = default
  uint32_t active = 0;              // active pattern id (0 = default)
  // Next declaration slot for this incarnation. Pattern declarations happen
  // in program order, so a restarted rank re-declaring its patterns must be
  // handed the same ids it held before the rollback — declarations reuse
  // restored slots instead of appending.
  uint32_t next_declare = 1;

  PatternBook() : iteration(1, 0) {}

  PatternTag current() const {
    return PatternTag{active, active == 0 ? 0u : iteration[active]};
  }

  void serialize(util::ByteWriter& w) const {
    w.put_vector(iteration);
    w.put<uint32_t>(active);
  }
  void restore(util::ByteReader& r) {
    iteration = r.get_vector<uint32_t>();
    active = r.get<uint32_t>();
    next_declare = 1;  // the restarted main re-declares from the top
  }
};

/// Per-rank cumulative profile (IPM-style; drives the Fig. 5 analysis of
/// comm/compute ratios and the clustering tool's traffic matrix).
struct RankProfile {
  sim::Time time_compute = 0;
  sim::Time time_mpi = 0;  // blocked or in MPI calls
  // Extra compute time from running on a straggler node
  // (MachineConfig::straggler_factor); included in time_compute.
  sim::Time time_straggler_stall = 0;
  uint64_t sends = 0;
  uint64_t recvs = 0;
  uint64_t bytes_sent_intra_cluster = 0;
  uint64_t bytes_sent_inter_cluster = 0;
  uint64_t bytes_logged = 0;
  uint64_t suppressed_sends = 0;   // LS suppression hits during recovery
  uint64_t duplicate_drops = 0;    // receiver-side dup filter hits
};

class Rank {
 public:
  Rank(Machine& machine, int world_rank);

  // Non-copyable: identity object owned by the Machine.
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  // ---- identity -------------------------------------------------------
  int rank() const { return world_rank_; }
  int nranks() const;
  const Comm& world() const;
  Machine& machine() { return machine_; }
  sim::Time now() const;

  // ---- point-to-point (Section 3.2 semantics) -------------------------
  Request isend(int dst, int tag, Payload payload, const Comm& comm);
  Request irecv(int src, int tag, const Comm& comm);
  void send(int dst, int tag, Payload payload, const Comm& comm);
  RecvResult recv(int src, int tag, const Comm& comm);

  void wait(Request& req);
  /// Returns the index of a completed request (non-deterministic completion
  /// function — one of the two non-determinism sources in Section 3.2).
  int waitany(std::vector<Request>& reqs);
  void waitall(std::vector<Request>& reqs);
  bool test(Request& req);
  bool testall(std::vector<Request>& reqs);

  bool iprobe(int src, int tag, const Comm& comm, Status* status);
  Status probe(int src, int tag, const Comm& comm);

  // ---- computation model ---------------------------------------------
  /// Models `seconds` of local computation (advances virtual time).
  void compute(sim::Time seconds);

  // ---- pattern API (Section 5.1) --------------------------------------
  /// pattern_id DECLARE_PATTERN(void)
  uint32_t declare_pattern();
  /// BEGIN_ITERATION(pattern_id)
  void begin_iteration(uint32_t pattern_id);
  /// END_ITERATION(pattern_id)
  void end_iteration(uint32_t pattern_id);
  PatternTag active_pattern() const { return patterns_.current(); }

  // ---- checkpoint / restart -------------------------------------------
  /// Registers the application's state (de)serializers. Must be called
  /// before the first maybe_checkpoint().
  void set_state_handlers(std::function<void(util::ByteWriter&)> save,
                          std::function<void(util::ByteReader&)> load);

  /// Checkpoint opportunity at an iteration boundary; the active protocol
  /// decides whether to take one (blocking; cluster-coordinated).
  bool maybe_checkpoint();

  /// True when this incarnation was restarted from a checkpoint.
  bool restarted() const { return restarted_; }

  /// After a restart: feeds the checkpointed application state back through
  /// the registered load handler. Call after set_state_handlers().
  void restore_app_state();

  // ---- misc -----------------------------------------------------------
  util::Pcg32& rng() { return rng_; }
  const RankProfile& profile() const { return profile_; }
  RankProfile& profile_mut() { return profile_; }

  /// Monotonic logical progress counter: increments on every MPI operation
  /// and compute() call; recovery is "caught up" when it reaches its
  /// pre-failure value. Deterministic across re-execution.
  uint64_t op_counter() const { return op_counter_; }

  /// Sub-op progress for rework measurement: a failure usually lands in the
  /// middle of a compute block, and the time already spent in that block is
  /// lost work the re-execution must redo. Tracking only whole ops would
  /// under-count rework by up to one compute block.
  struct Progress {
    uint64_t ops = 0;
    sim::Time compute_elapsed = 0;  // inside the current compute block
  };
  Progress progress_now() const;
  /// Captures progress at the moment of death (called by kill_rank before
  /// the fiber unwinds, so the victim's partial compute is measured at the
  /// crash, not at detection).
  void freeze_progress();
  const Progress* frozen_progress() const {
    return has_frozen_ ? &frozen_ : nullptr;
  }

  // ================= runtime-internal interface ========================
  // Used by Machine and protocol implementations; not by workloads.

  struct ChannelSendState {
    uint64_t next_seq = 0;       // last assigned seqnum (first message gets 1)
    SeqWindow peer_received;     // LS generalization: what dst already holds
    uint64_t replay_pending = 0;  // active replays gate new sends (FIFO)
  };

  /// Sequence-number stream key: (peer, ctx, stream). The stream is -1 in
  /// MPI-only mode (one stream per channel, the paper's base protocol) or
  /// the message tag under MachineConfig::seq_per_tag (the Section 7
  /// extension for MPI_THREAD_MULTIPLE).
  struct StreamKey {
    int peer = -1;
    int ctx = 0;
    int stream = -1;
    auto operator<=>(const StreamKey&) const = default;
  };

  /// Maps a message tag to its stream id under the active mode.
  int stream_of(int tag) const;

  /// Sender-side state for stream (me -> dst, ctx, stream_of(tag)).
  ChannelSendState& send_state(int dst, int ctx, int tag = 0);

  /// Recovery: wipes the LS-suppression windows of every stream toward
  /// `peer`. A Rollback (and its lastMessage reply) enumerates the peer's
  /// COMPLETE restored receive state, so streams absent from it — e.g.
  /// after the peer rolled back to the initial state — must not keep stale
  /// suppression, or re-executed sends the peer no longer holds would be
  /// skipped and lost.
  void clear_peer_received(int peer);
  /// Batched clear_peer_received: one pass over the send-state map wipes
  /// suppression for every peer satisfying `pred` (an aggregated rollback
  /// clears a whole recovering cluster; per-peer calls would rescan the map
  /// once per member).
  void clear_peer_received_if(const std::function<bool(int)>& pred);
  /// Receiver-side received-window for stream (src -> me, ctx, stream_of(tag)).
  SeqWindow& recv_window(int src, int ctx, int tag = 0);

  MatchEngine& match_engine() { return match_; }
  PatternBook& patterns() { return patterns_; }

  const std::map<StreamKey, ChannelSendState>& all_send_states() const {
    return send_state_;
  }
  const std::map<StreamKey, SeqWindow>& all_recv_windows() const {
    return recv_window_;
  }

  /// Delivery path (event context): an envelope reached this rank's MPI
  /// layer. `payload_ready` is false for rendezvous RTS.
  void deliver_envelope(const Envelope& env, Payload payload, bool payload_ready,
                        uint64_t sender_req);
  /// Rendezvous payload completion (event context).
  void deliver_payload(const Envelope& env, Payload payload, uint64_t sender_req);

  /// Marks `seq` received on (src,ctx) and runs protocol bookkeeping.
  /// Returns false if it was a duplicate (drop).
  bool accept_seq(const Envelope& env);

  /// Recovery support: a peer (`src`) crashed after this rank matched one of
  /// its rendezvous RTSs but before the payload arrived. The matched-but-
  /// incomplete requests are re-inserted into the posted queue (in post
  /// order) so the replayed/re-executed message matches them again.
  void rewind_pending_from(int src);
  /// Batched rewind_pending_from over every source satisfying `pred`.
  void rewind_pending_if(const std::function<bool(int)>& pred);

  /// Serializes MPI-layer state into a checkpoint section.
  void serialize_runtime(util::ByteWriter& w) const;
  void restore_runtime(util::ByteReader& r);

  /// Application state serializers (invoked by the checkpoint protocol).
  void serialize_app(util::ByteWriter& w) const;
  void restore_app(util::ByteReader& r);
  bool has_state_handlers() const { return static_cast<bool>(app_save_); }

  /// Recovery: wipe volatile MPI state before restore_runtime().
  void reset_for_restart();
  void set_restarted(bool v) { restarted_ = v; }

  /// Fiber bookkeeping.
  void set_task(sim::Engine::TaskId id) { task_ = id; }
  sim::Engine::TaskId task() const { return task_; }

  /// Blocks the calling fiber while `pred` is false; re-checked on wake.
  /// `site` labels the blocking location for deadlock diagnostics.
  void block_until(const std::function<bool()>& pred, const char* site = "block_until");
  /// Wakes the rank's fiber if it is parked in a blocking MPI call.
  void wake();

  /// Where this rank last parked (deadlock diagnostics).
  const std::string& block_site() const { return block_site_; }
  void set_block_site(std::string s) { block_site_ = std::move(s); }

  uint64_t next_collective_seq(int ctx) { return ++coll_seq_[ctx]; }
  uint64_t next_request_post_seq() { return ++req_post_seq_; }
  /// Advances the logical progress counter; during recovery, reaching the
  /// pre-failure value reports catch-up to the Machine (rework measurement).
  void bump_op_counter();

 private:
  Request make_send_request(int dst_world, int tag, Payload payload,
                            const Comm& comm);
  void complete_recv(const std::shared_ptr<RequestState>& req, const Envelope& env,
                     Payload payload);

  Machine& machine_;
  int world_rank_;
  sim::Engine::TaskId task_ = sim::Engine::kInvalidTask;

  MatchEngine match_;
  PatternBook patterns_;
  std::map<StreamKey, ChannelSendState> send_state_;
  std::map<StreamKey, SeqWindow> recv_window_;
  std::map<int, uint64_t> coll_seq_;  // per-ctx collective sequence
  uint64_t req_post_seq_ = 0;
  uint64_t op_counter_ = 0;
  uint64_t lamport_ = 0;  // piggybacked clock (HydEE replay ordering)

  std::function<void(util::ByteWriter&)> app_save_;
  std::function<void(util::ByteReader&)> app_load_;
  bool restarted_ = false;

  // Matched rendezvous receptions awaiting their payload:
  // (src, sender_req) -> request.
  std::map<std::pair<int, uint64_t>, std::shared_ptr<RequestState>> pending_payload_;

  // Recovery catch-up watch: when progress reaches this target the rank has
  // re-executed all work lost to the failure (ops == 0 => no watch).
  Progress catch_up_target_{};

  // Compute-block tracking for Progress.
  bool in_compute_ = false;
  sim::Time compute_start_ = 0;
  sim::Time compute_duration_ = 0;
  Progress frozen_{};
  bool has_frozen_ = false;

  std::string block_site_;

  util::Pcg32 rng_;
  RankProfile profile_;

 public:
  void set_catch_up_target(Progress t) { catch_up_target_ = t; }
};

}  // namespace spbc::mpi

#include "mpi/machine.hpp"

#include <algorithm>

namespace spbc::mpi {

namespace {
// Wire size of a control message / message header (transport framing).
constexpr uint64_t kHeaderBytes = 64;
}  // namespace

Machine::Machine(MachineConfig cfg, std::unique_ptr<ProtocolHooks> protocol)
    : cfg_(cfg),
      engine_(cfg.fiber_stack_bytes),
      topo_(sim::Topology::for_ranks(cfg.nranks, cfg.ranks_per_node,
                                     cfg.spare_nodes)),
      net_(engine_, topo_, cfg.net),
      protocol_(std::move(protocol)),
      world_(Comm::world(cfg.nranks)),
      incarnation_(static_cast<size_t>(cfg.nranks), 0),
      alive_(static_cast<size_t>(cfg.nranks), false),
      intra_outstanding_(static_cast<size_t>(cfg.nranks), 0),
      intra_drain_watchers_(static_cast<size_t>(cfg.nranks)),
      cluster_of_(static_cast<size_t>(cfg.nranks), 0),
      rendezvous_(static_cast<size_t>(cfg.nranks)),
      next_rendezvous_id_(static_cast<size_t>(cfg.nranks), 0),
      send_trace_rows_(static_cast<size_t>(cfg.nranks)),
      active_recovery_idx_(1, -1),
      pending_app_state_(static_cast<size_t>(cfg.nranks)) {
  SPBC_ASSERT(protocol_);
  traffic_.reset(cfg.nranks);
  engine_.set_abort_on_deadlock(cfg.abort_on_deadlock);
  // Elastic rebinds mutate machine-global maps from serial recovery events;
  // the threaded executor's shard windows do not serialize against those.
  if (cfg.spare_nodes > 0 ||
      cfg.default_failure_kind == FailureKind::kNodePermanent) {
    SPBC_ASSERT_MSG(cfg.engine_threads <= 1,
                    "elastic recovery (spare nodes / permanent failures) "
                    "requires engine_threads == 1");
  }
  node_of_rank_.resize(static_cast<size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r)
    node_of_rank_[static_cast<size_t>(r)] = topo_.node_of(r);
  node_retired_.assign(static_cast<size_t>(topo_.total_nodes()), 0);
  // Straggler set: a pure function of (straggler_seed, node) so every layout
  // and every re-execution agrees on which nodes are slow. Spare nodes draw
  // too — a hot-swapped rank inherits its spare's speed.
  straggler_node_.assign(static_cast<size_t>(topo_.total_nodes()), 0);
  if (cfg.straggler_factor > 1.0 && cfg.straggler_frac > 0.0) {
    for (int n = 0; n < topo_.total_nodes(); ++n) {
      util::Fnv1a64 h;
      h.update_u64(cfg.straggler_seed);
      h.update_u64(static_cast<uint64_t>(n) ^ 0x57a661e5ull);
      double u = static_cast<double>(h.digest() >> 11) /
                 static_cast<double>(1ULL << 53);
      straggler_node_[static_cast<size_t>(n)] = u < cfg.straggler_frac ? 1 : 0;
    }
  }
  tombstoned_.assign(static_cast<size_t>(cfg.nranks), 0);
  for (int s = topo_.nodes(); s < topo_.total_nodes(); ++s)
    spare_pool_.push_back(s);
  // Hardware-level routing (same-node checks, NIC indexing) follows the
  // dynamic binding; identical to the topology's block layout until a
  // retirement rebinds something.
  net_.set_node_of([this](int r) { return this->node_of(r); });
  ranks_.reserve(static_cast<size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r)
    ranks_.push_back(std::make_unique<Rank>(*this, r));
  protocol_->attach(*this);
}

Machine::~Machine() = default;

Rank& Machine::rank(int r) {
  SPBC_ASSERT(r >= 0 && r < cfg_.nranks);
  return *ranks_[static_cast<size_t>(r)];
}

void Machine::set_cluster_of(std::vector<int> cluster_of) {
  SPBC_ASSERT(static_cast<int>(cluster_of.size()) == cfg_.nranks);
  cluster_of_ = std::move(cluster_of);
  nclusters_ = *std::max_element(cluster_of_.begin(), cluster_of_.end()) + 1;
  // Node colocation sanity: ranks on the same node must share a cluster
  // (Section 6.1 — containment inside a node is meaningless).
  if (cfg_.enforce_node_colocation) {
    for (int r = 1; r < cfg_.nranks; ++r) {
      if (topo_.same_node(r - 1, r)) {
        SPBC_ASSERT_MSG(cluster_of_[r - 1] == cluster_of_[r],
                        "ranks " << r - 1 << " and " << r
                                 << " share a node but not a cluster");
      }
    }
  }
  active_recovery_idx_.assign(static_cast<size_t>(nclusters_), -1);

  // Shard plan. engine_shards == 1 keeps the legacy single-queue engine
  // (byte-identical trajectories). Anything else keys events by cluster:
  // logical shards are always one-per-cluster so the event order depends
  // only on the cluster map, and engine_shards merely caps how many physical
  // queues (and so how much thread parallelism) back them.
  if (cfg_.engine_shards != 1) {
    int exec = cfg_.engine_shards == 0
                   ? nclusters_
                   : std::min(cfg_.engine_shards, nclusters_);
    engine_.set_shard_plan(nclusters_, exec);
    // Cross-cluster messages take at least one network latency: inter-node
    // when clusters are node-colocated, else the intra-node floor. An
    // elastic machine gets the floor even when the initial map is colocated:
    // a shrunk restart can later pack two clusters onto one surviving node,
    // and their same-node cross-shard traffic then rides the intra path.
    const bool can_retire =
        cfg_.spare_nodes > 0 ||
        cfg_.default_failure_kind == FailureKind::kNodePermanent;
    engine_.set_lookahead(cfg_.enforce_node_colocation && !can_retire
                              ? cfg_.net.inter_latency
                              : cfg_.net.intra_latency);
    // The shared jitter RNG stream would make jitter values depend on the
    // global submit interleaving; sharded runs use the per-channel
    // counter-hash draw instead (order-independent, so identical for every
    // exec-shard/thread layout).
    net_.set_deterministic_jitter(true);
    if (cfg_.engine_threads > 1) {
      SPBC_ASSERT_MSG(cfg_.enforce_node_colocation,
                      "threaded shard executor requires node-colocated "
                      "clusters (per-node NIC state is shard-owned)");
      engine_.set_threads(cfg_.engine_threads);
    }
  }
  // Freeze the rank -> shard snapshot: later cluster migrations (streaming
  // repartitioner) keep a rank's events on its original shard, so the event
  // order — and with it fixed-seed bit-identity across shard layouts — never
  // depends on migration timing.
  shard_of_rank_ = cluster_of_;
  net_.set_shard_of([this](int r) { return this->shard_of(r); });
  protocol_->on_cluster_map(nclusters_);
}

int Machine::cluster_of(int rank) const {
  SPBC_ASSERT(rank >= 0 && rank < cfg_.nranks);
  return cluster_of_[static_cast<size_t>(rank)];
}

std::vector<int> Machine::ranks_in_cluster(int cluster) const {
  std::vector<int> out;
  for (int r = 0; r < cfg_.nranks; ++r)
    if (cluster_of_[static_cast<size_t>(r)] == cluster) out.push_back(r);
  return out;
}

void Machine::launch(AppFn app) {
  app_ = std::move(app);
  for (int r = 0; r < cfg_.nranks; ++r) {
    alive_[static_cast<size_t>(r)] = true;
    Rank* rk = ranks_[static_cast<size_t>(r)].get();
    auto id = engine_.spawn_on(shard_of(r), [this, rk] {
      protocol_->on_rank_start(*rk, /*restarted=*/false);
      app_(*rk);
      rk->set_task(sim::Engine::kInvalidTask);
    });
    rk->set_task(id);
    engine_.set_task_label(id, "rank " + std::to_string(r));
  }
}

RunResult Machine::run() {
  RunResult res;
  res.finish_time = engine_.run();
  res.deadlocked = engine_.deadlocked();
  res.completed = !res.deadlocked && engine_.live_task_count() == 0;
  return res;
}

void Machine::inject_failure(sim::Time t, int victim_rank) {
  inject_failure(t, victim_rank, cfg_.default_failure_kind);
}

void Machine::inject_failure(sim::Time t, int victim_rank, FailureKind kind) {
  SPBC_ASSERT(victim_rank >= 0 && victim_rank < cfg_.nranks);
  // Serial event: the crash freezes every rank's progress and mutates
  // machine-global state (incarnations, liveness), so it runs alone at the
  // global barrier. In the legacy single-queue plan this degrades to a
  // normal event with an unchanged ordering key.
  engine_.at_serial(t, [this, victim_rank, kind] {
    // Freeze everyone's progress at the crash instant: the victim's cluster
    // peers keep running until detection, but the lost-work window (and so
    // the rework normalization) is defined by the failure time.
    for (auto& rk : ranks_) rk->freeze_progress();
    // The crash instant is the one point where a failure event exists
    // exactly once (detection-time kills fan out per rank, and overlapping
    // same-cluster failures coalesce): storage-aware and self-tuning
    // protocols learn the event — and its severity — here, before any kill.
    protocol_->on_failure_injected(victim_rank, kind);
    // The process crashes now; the protocol learns about it after the
    // failure-detection delay.
    kill_rank(victim_rank);
    engine_.after(cfg_.failure_detection_delay,
                  [this, victim_rank] { protocol_->on_failure(victim_rank); });
  });
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void Machine::record_traffic(const Envelope& env) {
  traffic_.add(env.src, env.dst, env.bytes);
  if (cfg_.record_send_trace) {
    auto& tr = send_trace_rows_[static_cast<size_t>(env.src)]
                               [ChannelKey{env.src, env.dst, env.ctx}];
    util::Fnv1a64 h;
    h.update_u64(env.seqnum);
    h.update_u64(env.hash);
    h.update_u64(static_cast<uint64_t>(env.tag));
    h.update_u64((static_cast<uint64_t>(env.pid.pattern) << 32) | env.pid.iteration);
    tr.push_back(h.digest());
  }
}

void Machine::transport_send(Rank& /*sender*/, const Envelope& env, Payload payload,
                             std::function<void()> on_complete) {
  if (tombstoned_[static_cast<size_t>(env.dst)]) {
    // The destination is permanently dead, awaiting its elastic rebind: the
    // send completes as a no-op (MPI semantics: buffer reusable) without
    // entering the transport — no rendezvous handshake to spin on, no
    // intra-cluster in-flight accounting to drain. The restored destination
    // announces a Rollback after respawn; replay re-delivers what matters.
    tombstone_drops_.fetch_add(1, std::memory_order_relaxed);
    if (on_complete) on_complete();
    return;
  }
  record_traffic(env);
  bool intra = cluster_of(env.src) == cluster_of(env.dst);

  if (env.bytes <= cfg_.eager_threshold) {
    // Eager: one transfer carries header + payload; the send buffer is
    // reusable immediately (it was copied into the transport).
    if (intra) ++intra_outstanding_[static_cast<size_t>(env.src)];
    // The in-flight count belongs to this incarnation of the sender: if the
    // sender dies before arrival, kill_rank resets the counter and this
    // event must not touch it (it would underflow and wedge the drain).
    MsgNode* n = msg_pool_.acquire();
    n->env = env;
    n->payload = std::move(payload);
    n->inc = incarnation_[static_cast<size_t>(env.dst)];
    n->src_inc = incarnation_[static_cast<size_t>(env.src)];
    n->intra = intra;
    net_.submit(net::Transfer{env.src, env.dst, env.bytes + kHeaderBytes},
                [this, n] {
                  const Envelope env = n->env;
                  if (n->intra &&
                      incarnation_[static_cast<size_t>(env.src)] == n->src_inc) {
                    note_intra_send_landed(env.src);
                  }
                  if (incarnation_[static_cast<size_t>(env.dst)] != n->inc ||
                      !alive_[static_cast<size_t>(env.dst)]) {
                    dropped_in_flight_.fetch_add(1, std::memory_order_relaxed);
                    msg_pool_.release(n);
                    return;
                  }
                  Payload pl = std::move(n->payload);
                  msg_pool_.release(n);
                  deliver_data(env.dst, env, std::move(pl), true, 0);
                });
    on_complete();
  } else {
    // Rendezvous: RTS -> (match) -> CTS -> payload. The send completes when
    // the CTS arrives (buffer handed to the NIC). The intra-cluster
    // in-flight count covers the whole handshake: the message is "in the
    // channel" from RTS until its payload lands at the destination's MPI
    // layer, and the checkpoint wave's completion must wait out that span.
    if (intra) ++intra_outstanding_[static_cast<size_t>(env.src)];
    uint64_t id = ++next_rendezvous_id_[static_cast<size_t>(env.src)];
    rendezvous_[static_cast<size_t>(env.src)][id] =
        PendingRendezvous{env, std::move(payload), std::move(on_complete),
                          incarnation_[static_cast<size_t>(env.dst)]};
    ControlMsg rts;
    rts.kind = ControlMsg::Kind::kRts;
    rts.src = env.src;
    rts.dst = env.dst;
    rts.env = env;
    rts.sender_req = id;
    send_control(env.src, env.dst, std::move(rts));
  }
}

void Machine::send_control(int src, int dst, ControlMsg msg) {
  SPBC_ASSERT(dst >= 0 && dst < cfg_.nranks);
  if (tombstoned_[static_cast<size_t>(dst)]) {
    // Control traffic to a permanently-dead rank is dropped at the source:
    // the incarnation filter would discard it on arrival anyway, but a
    // tombstoned destination should not keep burning transport events.
    tombstone_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t bytes = kHeaderBytes + msg.words.size() * sizeof(uint64_t);
  CtrlNode* n = ctrl_pool_.acquire();
  n->msg = std::move(msg);
  n->inc = incarnation_[static_cast<size_t>(dst)];
  n->dst = dst;
  net_.submit(net::Transfer{src, dst, bytes}, [this, n] {
    if (incarnation_[static_cast<size_t>(n->dst)] != n->inc ||
        !alive_[static_cast<size_t>(n->dst)]) {
      dropped_in_flight_.fetch_add(1, std::memory_order_relaxed);
      ctrl_pool_.release(n);
      return;
    }
    handle_control(n->dst, n->msg);
    ctrl_pool_.release(n);
  });
}

void Machine::handle_control(int dst, const ControlMsg& msg) {
  switch (msg.kind) {
    case ControlMsg::Kind::kRts:
      deliver_data(dst, msg.env, Payload{}, false, msg.sender_req);
      break;
    case ControlMsg::Kind::kCts: {
      // Back at the sender (dst of the CTS): stream the payload, complete
      // the send request. The row is the sender's own.
      auto& row = rendezvous_[static_cast<size_t>(dst)];
      auto it = row.find(msg.sender_req);
      if (it == row.end()) return;  // purged by a crash in between
      PendingRendezvous pr = std::move(it->second);
      row.erase(it);
      // The rendezvous entry still existing proves the sender has not been
      // killed since the RTS, so the RTS-time intra increment is still live.
      bool intra = cluster_of(pr.env.src) == cluster_of(pr.env.dst);
      if (!msg.words.empty() && msg.words[0] == 1) {
        // Discard-CTS: the receiver already holds this seqnum; complete the
        // send without shipping the payload.
        if (intra) note_intra_send_landed(pr.env.src);
        if (pr.on_complete) pr.on_complete();
        break;
      }
      const Envelope env = pr.env;
      MsgNode* n = msg_pool_.acquire();
      n->env = env;
      n->payload = std::move(pr.payload);
      n->inc = incarnation_[static_cast<size_t>(env.dst)];
      n->src_inc = incarnation_[static_cast<size_t>(env.src)];
      n->intra = intra;
      n->req = msg.sender_req;
      net_.submit(net::Transfer{env.src, env.dst, env.bytes + kHeaderBytes},
                  [this, n] {
                    const Envelope env = n->env;
                    if (n->intra && incarnation_[static_cast<size_t>(
                                        env.src)] == n->src_inc) {
                      note_intra_send_landed(env.src);
                    }
                    if (incarnation_[static_cast<size_t>(env.dst)] != n->inc ||
                        !alive_[static_cast<size_t>(env.dst)]) {
                      dropped_in_flight_.fetch_add(1,
                                                   std::memory_order_relaxed);
                      msg_pool_.release(n);
                      return;
                    }
                    Payload pl = std::move(n->payload);
                    uint64_t req_id = n->req;
                    msg_pool_.release(n);
                    rank(env.dst).deliver_payload(env, std::move(pl), req_id);
                  });
      if (pr.on_complete) pr.on_complete();
      break;
    }
    default:
      protocol_->on_control(rank(dst), msg);
      break;
  }
}

void Machine::deliver_data(int dst, Envelope env, Payload payload, bool payload_ready,
                           uint64_t sender_req) {
  rank(dst).deliver_envelope(env, std::move(payload), payload_ready, sender_req);
}

void Machine::replay_send(int src, const Envelope& env, const Payload& payload,
                          std::function<void()> on_complete) {
  if (tombstoned_[static_cast<size_t>(env.dst)]) {
    // Replay toward a permanently-dead rank: complete immediately so the
    // replayer's pacing window keeps moving. The rank's post-rebind Rollback
    // re-announces its restored windows and the replay re-enqueues then.
    tombstone_drops_.fetch_add(1, std::memory_order_relaxed);
    if (on_complete) on_complete();
    return;
  }
  MsgNode* n = msg_pool_.acquire();
  n->env = env;
  n->env.replayed = true;
  n->payload = payload;
  n->inc = incarnation_[static_cast<size_t>(env.dst)];
  // The completion mutates the *sender's* replayer and channel state
  // (replay_pending, pacing window, waking the sender's fiber), while the
  // arrival event runs on the destination's shard. Sharded plans schedule
  // the completion back on the calling (sender's) shard at the arrival
  // time; the legacy engine keeps the historical inline call from the
  // arrival event (byte-identical trajectories for pinned rows).
  const bool split_completion = engine_.sharded();
  n->on_complete = split_completion ? nullptr : std::move(on_complete);
  sim::Time arrival =
      net_.submit(net::Transfer{src, env.dst, env.bytes + kHeaderBytes},
                  [this, n] {
                    const Envelope renv = n->env;
                    if (incarnation_[static_cast<size_t>(renv.dst)] == n->inc &&
                        alive_[static_cast<size_t>(renv.dst)]) {
                      deliver_data(renv.dst, renv, std::move(n->payload), true, 0);
                    }
                    auto done = std::move(n->on_complete);
                    n->on_complete = nullptr;
                    msg_pool_.release(n);
                    if (done) done();
                  });
  if (split_completion && on_complete) engine_.at(arrival, std::move(on_complete));
}

// ---------------------------------------------------------------------------
// Crash / recovery mechanics
// ---------------------------------------------------------------------------

void Machine::retire_node(int node) {
  SPBC_ASSERT(node >= 0 && node < topo_.total_nodes());
  if (node_retired_[static_cast<size_t>(node)]) return;  // coalesced storm
  node_retired_[static_cast<size_t>(node)] = 1;
  std::vector<int> residents;
  for (int r = 0; r < cfg_.nranks; ++r)
    if (node_of_rank_[static_cast<size_t>(r)] == node) residents.push_back(r);
  if (residents.empty()) return;  // a drained node (everyone migrated away)
  for (int r : residents) tombstoned_[static_cast<size_t>(r)] = 1;

  if (!spare_pool_.empty()) {
    // Hot-swap: the whole resident set moves to the next pooled spare, so
    // the node-colocation invariant is preserved as-is.
    const int spare = spare_pool_.front();
    spare_pool_.erase(spare_pool_.begin());
    for (int r : residents) node_of_rank_[static_cast<size_t>(r)] = spare;
    ++spare_swaps_;
    return;
  }

  // Pool exhausted — shrunk restart: re-pack the residents onto the least
  // loaded surviving node, preferring one that already hosts their cluster
  // (keeps the colocation invariant when possible; a cross-cluster target is
  // the documented graceful degradation and is why elastic machines run
  // single-threaded). Deterministic: ties break toward the lowest node id.
  const int cluster = cluster_of_[static_cast<size_t>(residents.front())];
  std::vector<int> load(static_cast<size_t>(topo_.total_nodes()), 0);
  std::vector<uint8_t> hosts_cluster(static_cast<size_t>(topo_.total_nodes()),
                                     0);
  for (int r = 0; r < cfg_.nranks; ++r) {
    const int n = node_of_rank_[static_cast<size_t>(r)];
    if (n == node) continue;  // the dying residents themselves
    ++load[static_cast<size_t>(n)];
    if (cluster_of_[static_cast<size_t>(r)] == cluster)
      hosts_cluster[static_cast<size_t>(n)] = 1;
  }
  int best = -1;
  for (int n = 0; n < topo_.total_nodes(); ++n) {
    if (node_retired_[static_cast<size_t>(n)]) continue;
    if (load[static_cast<size_t>(n)] == 0 && n >= topo_.nodes())
      continue;  // an idle spare would have been in the pool
    if (best < 0 ||
        hosts_cluster[static_cast<size_t>(n)] >
            hosts_cluster[static_cast<size_t>(best)] ||
        (hosts_cluster[static_cast<size_t>(n)] ==
             hosts_cluster[static_cast<size_t>(best)] &&
         load[static_cast<size_t>(n)] < load[static_cast<size_t>(best)])) {
      best = n;
    }
  }
  SPBC_ASSERT_MSG(best >= 0, "no surviving node to shrink onto");
  for (int r : residents) node_of_rank_[static_cast<size_t>(r)] = best;
  ++shrink_restarts_;
}

void Machine::migrate_rank(int r, int cluster) {
  SPBC_ASSERT(r >= 0 && r < cfg_.nranks);
  SPBC_ASSERT(cluster >= 0 && cluster < nclusters_);
  cluster_of_[static_cast<size_t>(r)] = cluster;
}

void Machine::kill_rank(int r) {
  SPBC_ASSERT(r >= 0 && r < cfg_.nranks);
  if (!alive_[static_cast<size_t>(r)]) return;
  // Record lost progress at the moment of death (rework measurement).
  rank(r).freeze_progress();
  alive_[static_cast<size_t>(r)] = false;
  ++incarnation_[static_cast<size_t>(r)];
  // Pending rendezvous sends from the dead rank die with it.
  rendezvous_[static_cast<size_t>(r)].clear();
  intra_outstanding_[static_cast<size_t>(r)] = 0;
  // Drain watchers armed by the old incarnation are void: the checkpoint
  // wave they belonged to died with the rollback.
  intra_drain_watchers_[static_cast<size_t>(r)].clear();
  Rank& rk = rank(r);
  if (rk.task() != sim::Engine::kInvalidTask) {
    engine_.kill(rk.task());
    rk.set_task(sim::Engine::kInvalidTask);
  }
  // After the fiber unwound: storage-aware protocols drop checkpoint copies
  // that lived on the dead node.
  protocol_->on_rank_killed(r);
}

void Machine::respawn_rank(int r, bool restarted) {
  SPBC_ASSERT(!alive_[static_cast<size_t>(r)]);
  alive_[static_cast<size_t>(r)] = true;
  // Second incarnation bump: messages submitted while the rank was down
  // (survivors keep sending until they block) must not slip past the filter
  // by arriving after the respawn — they would overtake the replayed prefix
  // and break per-channel FIFO. Every such message is in its sender's log
  // and absent from the restored received-window, so replay re-delivers it
  // in order.
  ++incarnation_[static_cast<size_t>(r)];
  Rank* rk = ranks_[static_cast<size_t>(r)].get();
  rk->set_restarted(restarted);
  tombstoned_[static_cast<size_t>(r)] = 0;  // elastic rebind completed
  auto id = engine_.spawn_on(shard_of(r), [this, rk, restarted] {
    protocol_->on_rank_start(*rk, restarted);
    app_(*rk);
    rk->set_task(sim::Engine::kInvalidTask);
  });
  rk->set_task(id);
  engine_.set_task_label(id, "rank " + std::to_string(r) + " (restarted)");
}

void Machine::set_pending_app_state(int r, std::vector<unsigned char> bytes) {
  SPBC_ASSERT(r >= 0 && r < cfg_.nranks);
  pending_app_state_[static_cast<size_t>(r)] = std::move(bytes);
}

std::vector<unsigned char> Machine::take_pending_app_state(int r) {
  SPBC_ASSERT(r >= 0 && r < cfg_.nranks);
  auto bytes = std::move(pending_app_state_[static_cast<size_t>(r)]);
  pending_app_state_[static_cast<size_t>(r)].clear();
  return bytes;
}

std::vector<Envelope> Machine::pending_rendezvous_envelopes() const {
  std::vector<Envelope> out;
  for (const auto& row : rendezvous_)
    for (const auto& [id, pr] : row) out.push_back(pr.env);
  return out;
}

std::map<ChannelKey, std::vector<uint64_t>> Machine::send_trace() const {
  std::map<ChannelKey, std::vector<uint64_t>> out;
  // ChannelKey orders by src first, so appending rows in src order keeps the
  // hint valid and the merge linear.
  for (const auto& row : send_trace_rows_)
    out.insert(row.begin(), row.end());
  return out;
}

std::vector<Machine::OrphanSend> Machine::take_rendezvous_to(int dst, int src) {
  std::vector<OrphanSend> out;
  auto& row = rendezvous_[static_cast<size_t>(src)];
  for (auto it = row.begin(); it != row.end();) {
    if (it->second.env.dst == dst &&
        it->second.dst_inc != incarnation_[static_cast<size_t>(dst)]) {
      out.push_back(OrphanSend{it->second.env, std::move(it->second.on_complete)});
      it = row.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::map<int, std::vector<Machine::OrphanSend>> Machine::take_rendezvous_to_if(
    const std::function<bool(int)>& pred, int src) {
  std::map<int, std::vector<OrphanSend>> out;
  auto& row = rendezvous_[static_cast<size_t>(src)];
  for (auto it = row.begin(); it != row.end();) {
    const int dst = it->second.env.dst;
    if (pred(dst) && it->second.dst_inc != incarnation_[static_cast<size_t>(dst)]) {
      out[dst].push_back(
          OrphanSend{it->second.env, std::move(it->second.on_complete)});
      it = row.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void Machine::note_intra_send_landed(int src) {
  SPBC_ASSERT(intra_outstanding_[static_cast<size_t>(src)] > 0);
  --intra_outstanding_[static_cast<size_t>(src)];
  rank(src).wake();  // waiters on the count (diagnostics, legacy drains)
  if (intra_outstanding_[static_cast<size_t>(src)] == 0) {
    auto fns = std::move(intra_drain_watchers_[static_cast<size_t>(src)]);
    intra_drain_watchers_[static_cast<size_t>(src)].clear();
    for (auto& fn : fns) fn();
  }
}

void Machine::notify_when_intra_drained(int r, std::function<void()> fn) {
  if (intra_outstanding_[static_cast<size_t>(r)] == 0) {
    fn();
    return;
  }
  intra_drain_watchers_[static_cast<size_t>(r)].push_back(std::move(fn));
}

// ---------------------------------------------------------------------------
// Recovery measurement
// ---------------------------------------------------------------------------

RecoveryRecord* Machine::active_recovery(int cluster) {
  SPBC_ASSERT(cluster >= 0);
  if (static_cast<size_t>(cluster) >= active_recovery_idx_.size())
    return nullptr;
  ptrdiff_t idx = active_recovery_idx_[static_cast<size_t>(cluster)];
  if (idx < 0) return nullptr;
  return &recoveries_[static_cast<size_t>(idx)];
}

void Machine::begin_recovery_record(int cluster, sim::Time failure_time,
                                    sim::Time checkpoint_time,
                                    std::map<int, Rank::Progress> target_ops) {
  RecoveryRecord rec;
  rec.failed_cluster = cluster;
  rec.failure_time = failure_time;
  rec.restart_time = engine_.now();
  rec.checkpoint_time = checkpoint_time;
  rec.target_ops = std::move(target_ops);
  for (const auto& [r, ops] : rec.target_ops) rank(r).set_catch_up_target(ops);
  // Runs in serial (recovery-orchestration) context, so the push_back never
  // races a shard thread dereferencing an index.
  SPBC_ASSERT(cluster >= 0 &&
              static_cast<size_t>(cluster) < active_recovery_idx_.size());
  recoveries_.push_back(std::move(rec));
  active_recovery_idx_[static_cast<size_t>(cluster)] =
      static_cast<ptrdiff_t>(recoveries_.size()) - 1;
}

void Machine::note_catch_up(int r) {
  // Called from r's fiber: only cluster_of(r)'s shard touches this slot and
  // record, so the map insertions below are single-shard.
  RecoveryRecord* rec = active_recovery(cluster_of(r));
  if (!rec) return;
  if (rec->catch_up.count(r)) return;
  rec->catch_up[r] = engine_.now();
  if (rec->complete()) {
    rec->caught_up_time = engine_.now();
    active_recovery_idx_[static_cast<size_t>(cluster_of(r))] = -1;
  }
}

}  // namespace spbc::mpi

#include "mpi/rank.hpp"

#include <algorithm>

#include "mpi/machine.hpp"

namespace spbc::mpi {

Rank::Rank(Machine& machine, int world_rank)
    : machine_(machine),
      world_rank_(world_rank),
      rng_(machine.config().seed, static_cast<uint64_t>(world_rank) + 1) {}

int Rank::nranks() const { return machine_.nranks(); }
const Comm& Rank::world() const { return machine_.world(); }
sim::Time Rank::now() const { return machine_.engine().now(); }

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

Request Rank::isend(int dst, int tag, Payload payload, const Comm& comm) {
  bump_op_counter();
  // Application tags live in [0, kCollectiveTagBase); the collective layer
  // uses the range above it.
  SPBC_ASSERT_MSG(tag >= 0 && tag < (kCollectiveTagBase << 1),
                  "tag " << tag << " out of range");
  int dst_world = comm.world_rank(dst);
  SPBC_ASSERT_MSG(dst_world != world_rank_, "self-send unsupported");
  auto& ch = send_state(dst_world, comm.ctx(), tag);

  Envelope env;
  env.src = world_rank_;
  env.dst = dst_world;
  env.tag = tag;
  env.ctx = comm.ctx();
  env.seqnum = ++ch.next_seq;
  env.pid = patterns_.current();
  env.bytes = payload.bytes;
  env.hash = payload.hash;
  env.uid = machine_.fresh_uid();
  env.lclock = ++lamport_;
  machine_.protocol().stamp_envelope(*this, env);

  ++profile_.sends;
  bool inter = machine_.cluster_of(env.src) != machine_.cluster_of(env.dst);
  if (inter)
    profile_.bytes_sent_inter_cluster += env.bytes;
  else
    profile_.bytes_sent_intra_cluster += env.bytes;

  // Protocol hook: sender-based logging (Algorithm 1, line 6). Always runs,
  // even for suppressed sends — the paper logs before the LS guard.
  sim::Time cost = machine_.protocol().on_send(*this, env, payload);
  cost += machine_.network().send_overhead();

  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::kSend;
  st->ctx = comm.ctx();
  st->send_env = env;

  // Charge sender-side CPU cost (logging memcpy + injection overhead).
  sim::Time t0 = now();
  machine_.engine().wait(cost);
  profile_.time_mpi += now() - t0;

  // LS suppression (Algorithm 1, line 7): skip transmission if the peer
  // already received this seqnum before we rolled back.
  if (!machine_.protocol().should_transmit(*this, env)) {
    ++profile_.suppressed_sends;
    st->complete = true;
    return Request(st);
  }

  // FIFO with in-progress replay: a channel being replayed from our log must
  // deliver the replayed prefix before any new message (per-channel order).
  if (ch.replay_pending > 0) {
    sim::Time b0 = now();
    block_until([&ch] { return ch.replay_pending == 0; }, "isend replay gate");
    profile_.time_mpi += now() - b0;
  }

  machine_.transport_send(*this, env, std::move(payload), [this, st] {
    st->complete = true;
    if (st->waiter != sim::Engine::kInvalidTask) machine_.engine().unpark(st->waiter);
  });
  return Request(st);
}

Request Rank::irecv(int src, int tag, const Comm& comm) {
  bump_op_counter();
  auto st = std::make_shared<RequestState>();
  st->kind = RequestState::Kind::kRecv;
  st->match_src = (src == kAnySource) ? kAnySource : comm.world_rank(src);
  st->match_tag = tag;
  st->ctx = comm.ctx();
  st->pid = patterns_.current();
  st->post_seq = next_request_post_seq();

  match_.set_match_pattern_ids(machine_.protocol().pattern_matching_enabled());
  auto res = match_.on_post(st);
  if (res.matched) {
    if (res.msg.payload_ready) {
      complete_recv(st, res.msg.env, std::move(res.msg.payload));
    } else {
      // Rendezvous: clear-to-send, then wait for the payload.
      st->matched = true;
      st->matched_seq = res.msg.env.seqnum;
      st->matched_tag = res.msg.env.tag;
      pending_payload_[{res.msg.env.src, res.msg.sender_req}] = st;
      ControlMsg cts;
      cts.kind = ControlMsg::Kind::kCts;
      cts.src = world_rank_;
      cts.dst = res.msg.env.src;
      cts.env = res.msg.env;
      cts.sender_req = res.msg.sender_req;
      machine_.send_control(world_rank_, res.msg.env.src, std::move(cts));
    }
  }
  return Request(st);
}

void Rank::send(int dst, int tag, Payload payload, const Comm& comm) {
  Request r = isend(dst, tag, std::move(payload), comm);
  wait(r);
}

RecvResult Rank::recv(int src, int tag, const Comm& comm) {
  Request r = irecv(src, tag, comm);
  wait(r);
  return r.result();
}

void Rank::wait(Request& req) {
  bump_op_counter();
  SPBC_ASSERT_MSG(req.valid(), "wait on null request");
  RequestState* st = req.state();
  if (!st->complete) {
    std::string site = st->kind == RequestState::Kind::kRecv
                           ? "wait(recv src=" + std::to_string(st->match_src) +
                                 " tag=" + std::to_string(st->match_tag) + ")"
                           : "wait(send dst=" + std::to_string(st->send_env.dst) +
                                 " seq=" + std::to_string(st->send_env.seqnum) + ")";
    set_block_site(std::move(site));
  }
  sim::Time t0 = now();
  while (!st->complete) {
    st->waiter = machine_.engine().current_task();
    machine_.engine().park();
    st->waiter = sim::Engine::kInvalidTask;
  }
  profile_.time_mpi += now() - t0;
  if (st->kind == RequestState::Kind::kRecv) ++profile_.recvs;
}

int Rank::waitany(std::vector<Request>& reqs) {
  bump_op_counter();
  SPBC_ASSERT(!reqs.empty());
  sim::Time t0 = now();
  for (;;) {
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && reqs[i].complete()) {
        profile_.time_mpi += now() - t0;
        if (reqs[i].state()->kind == RequestState::Kind::kRecv) ++profile_.recvs;
        return static_cast<int>(i);
      }
    }
    auto me = machine_.engine().current_task();
    for (auto& r : reqs)
      if (r.valid()) r.state()->waiter = me;
    machine_.engine().park();
    for (auto& r : reqs)
      if (r.valid()) r.state()->waiter = sim::Engine::kInvalidTask;
  }
}

void Rank::waitall(std::vector<Request>& reqs) {
  for (auto& r : reqs)
    if (r.valid()) wait(r);
}

bool Rank::test(Request& req) {
  bump_op_counter();
  // Polling costs CPU and is a scheduling point; without this, test loops
  // would spin forever in a cooperative simulator.
  machine_.engine().wait(machine_.config().poll_overhead);
  return req.complete();
}

bool Rank::testall(std::vector<Request>& reqs) {
  bump_op_counter();
  machine_.engine().wait(machine_.config().poll_overhead);
  for (const auto& r : reqs)
    if (r.valid() && !r.complete()) return false;
  return true;
}

bool Rank::iprobe(int src, int tag, const Comm& comm, Status* status) {
  bump_op_counter();
  machine_.engine().wait(machine_.config().poll_overhead);
  RequestState probe;
  probe.match_src = (src == kAnySource) ? kAnySource : comm.world_rank(src);
  probe.match_tag = tag;
  probe.ctx = comm.ctx();
  probe.pid = patterns_.current();
  match_.set_match_pattern_ids(machine_.protocol().pattern_matching_enabled());
  bool hit = match_.iprobe(probe, status);
  if (hit && status && status->source >= 0) {
    int cr = comm.comm_rank(status->source);
    SPBC_ASSERT(cr >= 0);
    status->source = cr;
  }
  return hit;
}

Status Rank::probe(int src, int tag, const Comm& comm) {
  Status status;
  sim::Time t0 = now();
  block_until([&] {
    RequestState probe_req;
    probe_req.match_src = (src == kAnySource) ? kAnySource : comm.world_rank(src);
    probe_req.match_tag = tag;
    probe_req.ctx = comm.ctx();
    probe_req.pid = patterns_.current();
    return match_.iprobe(probe_req, &status);
  });
  profile_.time_mpi += now() - t0;
  bump_op_counter();
  if (status.source >= 0) {
    int cr = comm.comm_rank(status.source);
    SPBC_ASSERT(cr >= 0);
    status.source = cr;
  }
  return status;
}

void Rank::compute(sim::Time seconds) {
  bump_op_counter();
  SPBC_ASSERT(seconds >= 0);
  double noise = machine_.config().compute_noise_frac;
  if (noise > 0) {
    // Deterministic per (seed, rank, op): re-execution redoes the same block
    // with the same duration, so rework comparisons stay apples-to-apples.
    util::Fnv1a64 h;
    h.update_u64(machine_.config().seed);
    h.update_u64(static_cast<uint64_t>(world_rank_));
    h.update_u64(op_counter_);
    double u = static_cast<double>(h.digest() >> 11) /
               static_cast<double>(1ULL << 53);
    seconds *= 1.0 + noise * u;
  }
  const MachineConfig& mc = machine_.config();
  if (mc.straggler_factor > 1.0 &&
      machine_.straggler_node(machine_.node_of(world_rank_))) {
    // Straggler-ness follows the PHYSICAL binding: a rank hot-swapped onto a
    // spare node takes on that node's speed.
    sim::Time extra = seconds * (mc.straggler_factor - 1.0);
    profile_.time_straggler_stall += extra;
    seconds += extra;
  }
  profile_.time_compute += seconds;
  in_compute_ = true;
  compute_start_ = now();
  compute_duration_ = seconds;
  machine_.engine().wait(seconds);
  in_compute_ = false;
}

// ---------------------------------------------------------------------------
// Pattern API (Section 5.1)
// ---------------------------------------------------------------------------

uint32_t Rank::declare_pattern() {
  uint32_t id = patterns_.next_declare++;
  if (id < patterns_.iteration.size()) return id;  // re-declared after restart
  SPBC_ASSERT(id == patterns_.iteration.size());
  patterns_.iteration.push_back(0);
  return id;
}

void Rank::begin_iteration(uint32_t pattern_id) {
  SPBC_ASSERT_MSG(pattern_id > 0 && pattern_id < patterns_.iteration.size(),
                  "BEGIN_ITERATION on undeclared pattern " << pattern_id);
  SPBC_ASSERT_MSG(patterns_.active == 0,
                  "nested patterns are not supported (active="
                      << patterns_.active << ")");
  patterns_.active = pattern_id;
  ++patterns_.iteration[pattern_id];
}

void Rank::end_iteration(uint32_t pattern_id) {
  SPBC_ASSERT_MSG(patterns_.active == pattern_id,
                  "END_ITERATION(" << pattern_id << ") but active pattern is "
                                   << patterns_.active);
  patterns_.active = 0;  // restore the default communication pattern
}

// ---------------------------------------------------------------------------
// Checkpoint / restart
// ---------------------------------------------------------------------------

void Rank::set_state_handlers(std::function<void(util::ByteWriter&)> save,
                              std::function<void(util::ByteReader&)> load) {
  app_save_ = std::move(save);
  app_load_ = std::move(load);
}

bool Rank::maybe_checkpoint() {
  bump_op_counter();
  return machine_.protocol().maybe_checkpoint(*this);
}

// ---------------------------------------------------------------------------
// Runtime internals
// ---------------------------------------------------------------------------

int Rank::stream_of(int tag) const {
  return machine_.config().seq_per_tag ? tag : -1;
}

Rank::ChannelSendState& Rank::send_state(int dst, int ctx, int tag) {
  return send_state_[StreamKey{dst, ctx, stream_of(tag)}];
}

void Rank::clear_peer_received(int peer) {
  for (auto& [key, ch] : send_state_) {
    if (key.peer == peer) ch.peer_received = SeqWindow{};
  }
}

void Rank::clear_peer_received_if(const std::function<bool(int)>& pred) {
  for (auto& [key, ch] : send_state_) {
    if (pred(key.peer)) ch.peer_received = SeqWindow{};
  }
}

SeqWindow& Rank::recv_window(int src, int ctx, int tag) {
  return recv_window_[StreamKey{src, ctx, stream_of(tag)}];
}

bool Rank::accept_seq(const Envelope& env) {
  auto& win = recv_window(env.src, env.ctx, env.tag);
  if (win.contains(env.seqnum)) {
    ++profile_.duplicate_drops;
    return false;
  }
  win.add(env.seqnum);
  lamport_ = std::max(lamport_, env.lclock) + 1;
  return true;
}

void Rank::deliver_envelope(const Envelope& env, Payload payload, bool payload_ready,
                            uint64_t sender_req) {
  match_.set_match_pattern_ids(machine_.protocol().pattern_matching_enabled());
  if (payload_ready) {
    // Full message (eager or replayed): dedupe + received-window update.
    if (!accept_seq(env)) return;
    machine_.protocol().on_delivered(*this, env, payload);
    // Overlapping recoveries can race a REPLAYED full copy of a message
    // against an in-flight rendezvous handshake for the same message (a
    // re-executed copy takes the same eager/rendezvous path as the
    // original, so only replays deliver a full copy of a rendezvous-sized
    // message). Reconcile instead of queuing a duplicate copy — gated on
    // env.replayed to keep both scans off the failure-free hot path:
    if (env.replayed) {
      //  (a) a request already matched the message's RTS and is parked on
      //      the payload — complete it with this copy (content is identical
      //      by send determinism; the eventual rendezvous payload, if the
      //      handshake is still live, deduplicates on arrival);
      for (auto it = pending_payload_.begin(); it != pending_payload_.end(); ++it) {
        const auto& req = it->second;
        if (it->first.first == env.src && req->matched_seq == env.seqnum &&
            req->ctx == env.ctx && req->matched_tag == env.tag) {
          auto r = req;
          pending_payload_.erase(it);
          complete_recv(r, env, std::move(payload));
          wake();
          return;
        }
      }
      //  (b) the message's RTS is still queued unmatched — merge the payload
      //      into that entry (keeping its arrival-order position) and
      //      release the sender with a discard-CTS, since the payload need
      //      not ship.
      uint64_t stale_req = 0;
      if (match_.adopt_pending_rts(env, payload, &stale_req)) {
        ControlMsg cts;
        cts.kind = ControlMsg::Kind::kCts;
        cts.src = world_rank_;
        cts.dst = env.src;
        cts.env = env;
        cts.sender_req = stale_req;
        cts.words.push_back(1);  // discard: complete the send, skip payload
        machine_.send_control(world_rank_, env.src, std::move(cts));
        wake();
        return;
      }
    }
    auto req = match_.on_envelope(env, payload, true, sender_req);
    if (req) complete_recv(req, env, std::move(payload));
  } else {
    // Rendezvous RTS for an already-received seqnum: the payload will never
    // be needed, but the sender is parked waiting for a CTS — answer with a
    // discard-CTS so its request completes without a payload transfer.
    // (This happens when a rolled-back sender re-executes a send before the
    // peer's lastMessage suppression info reaches it.)
    const auto& win = recv_window(env.src, env.ctx, env.tag);
    if (win.contains(env.seqnum)) {
      ++profile_.duplicate_drops;
      ControlMsg cts;
      cts.kind = ControlMsg::Kind::kCts;
      cts.src = world_rank_;
      cts.dst = env.src;
      cts.env = env;
      cts.sender_req = sender_req;
      cts.words.push_back(1);  // discard: complete the send, skip the payload
      machine_.send_control(world_rank_, env.src, std::move(cts));
      return;
    }
    Payload empty;
    auto req = match_.on_envelope(env, empty, false, sender_req);
    if (req) {
      req->matched = true;
      req->matched_seq = env.seqnum;
      req->matched_tag = env.tag;
      pending_payload_[{env.src, sender_req}] = req;
      ControlMsg cts;
      cts.kind = ControlMsg::Kind::kCts;
      cts.src = world_rank_;
      cts.dst = env.src;
      cts.env = env;
      cts.sender_req = sender_req;
      machine_.send_control(world_rank_, env.src, std::move(cts));
    }
  }
  wake();
}

void Rank::deliver_payload(const Envelope& env, Payload payload, uint64_t sender_req) {
  if (!accept_seq(env)) return;
  machine_.protocol().on_delivered(*this, env, payload);
  auto it = pending_payload_.find({env.src, sender_req});
  if (it != pending_payload_.end()) {
    auto req = it->second;
    pending_payload_.erase(it);
    complete_recv(req, env, std::move(payload));
  } else {
    // RTS queued as unexpected and still unmatched: attach the payload.
    bool ok = match_.complete_unexpected_payload(sender_req, env.src, std::move(payload));
    SPBC_ASSERT_MSG(ok, "rendezvous payload with no matching RTS state");
  }
  wake();
}

void Rank::rewind_pending_from(int src) {
  rewind_pending_if([src](int s) { return s == src; });
}

void Rank::rewind_pending_if(const std::function<bool(int)>& pred) {
  // Pair each rewound request with its entry's source: an aggregated
  // rollback rewinds a whole cluster's worth of sources in one pass.
  std::vector<std::pair<int, std::shared_ptr<RequestState>>> rewound;
  for (auto it = pending_payload_.begin(); it != pending_payload_.end();) {
    if (pred(it->first.first)) {
      it->second->matched = false;
      rewound.emplace_back(it->first.first, it->second);
      it = pending_payload_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [src, req] : rewound) {
    // Bind the request to the exact message it had matched: its re-delivery
    // (replayed from the peer's log, or regenerated by re-execution) is
    // guaranteed, and binding prevents a newer message on the channel from
    // being grabbed out of order.
    req->bound_seq = req->matched_seq;
    req->match_src = src;
    // The re-delivery may already be sitting in the unexpected queue (the
    // restarted peer can re-send before its Rollback reaches us), so insert
    // in post order, then scan for the bound message.
    match_.repost(req);
    auto res = match_.take_bound(*req);
    if (!res.matched) continue;
    match_.cancel_posted(req.get());
    if (res.msg.payload_ready) {
      complete_recv(req, res.msg.env, std::move(res.msg.payload));
    } else {
      req->matched = true;
      req->matched_seq = res.msg.env.seqnum;
      req->matched_tag = res.msg.env.tag;
      pending_payload_[{res.msg.env.src, res.msg.sender_req}] = req;
      ControlMsg cts;
      cts.kind = ControlMsg::Kind::kCts;
      cts.src = world_rank_;
      cts.dst = res.msg.env.src;
      cts.env = res.msg.env;
      cts.sender_req = res.msg.sender_req;
      machine_.send_control(world_rank_, res.msg.env.src, std::move(cts));
    }
  }
}

void Rank::complete_recv(const std::shared_ptr<RequestState>& req, const Envelope& env,
                         Payload payload) {
  req->complete = true;
  req->result.source = env.src;  // world rank; collectives translate as needed
  req->result.tag = env.tag;
  req->result.bytes = env.bytes;
  req->result.hash = env.hash;
  req->result.data = std::move(payload.data);
  machine_.protocol().on_matched(*this, env);
  if (req->waiter != sim::Engine::kInvalidTask) machine_.engine().unpark(req->waiter);
}

void Rank::serialize_runtime(util::ByteWriter& w) const {
  w.put<uint64_t>(send_state_.size());
  for (const auto& [key, ch] : send_state_) {
    // replay_pending is transient and deliberately not serialized: a rank may
    // snapshot while replaying for another cluster's recovery (the marker
    // wave never drains replays). If this snapshot is ever restored, the
    // replayer is reset and the still-recovering peers re-announce their
    // Rollbacks, which re-queues the replays from the restored log.
    w.put(key);
    w.put<uint64_t>(ch.next_seq);
    ch.peer_received.serialize(w);
  }
  w.put<uint64_t>(recv_window_.size());
  for (const auto& [key, win] : recv_window_) {
    w.put(key);
    win.serialize(w);
  }
  w.put<uint64_t>(coll_seq_.size());
  for (const auto& [ctx, seq] : coll_seq_) {
    w.put<int>(ctx);
    w.put<uint64_t>(seq);
  }
  w.put<uint64_t>(req_post_seq_);
  w.put<uint64_t>(op_counter_);
  w.put<uint64_t>(lamport_);
  patterns_.serialize(w);
  match_.serialize(w);
  w.put(rng_);
}

void Rank::restore_runtime(util::ByteReader& r) {
  send_state_.clear();
  auto ns = r.get<uint64_t>();
  for (uint64_t i = 0; i < ns; ++i) {
    StreamKey key = r.get<StreamKey>();
    ChannelSendState ch;
    ch.next_seq = r.get<uint64_t>();
    ch.peer_received = SeqWindow::deserialize(r);
    send_state_[key] = std::move(ch);
  }
  recv_window_.clear();
  auto nw = r.get<uint64_t>();
  for (uint64_t i = 0; i < nw; ++i) {
    StreamKey key = r.get<StreamKey>();
    recv_window_[key] = SeqWindow::deserialize(r);
  }
  coll_seq_.clear();
  auto nc = r.get<uint64_t>();
  for (uint64_t i = 0; i < nc; ++i) {
    int ctx = r.get<int>();
    coll_seq_[ctx] = r.get<uint64_t>();
  }
  req_post_seq_ = r.get<uint64_t>();
  op_counter_ = r.get<uint64_t>();
  lamport_ = r.get<uint64_t>();
  patterns_.restore(r);
  match_.restore(r);
  rng_ = r.get<util::Pcg32>();
}

void Rank::serialize_app(util::ByteWriter& w) const {
  SPBC_ASSERT_MSG(app_save_, "no state handlers registered (set_state_handlers)");
  app_save_(w);
}

void Rank::restore_app(util::ByteReader& r) {
  SPBC_ASSERT_MSG(app_load_, "no state handlers registered (set_state_handlers)");
  app_load_(r);
}

void Rank::restore_app_state() {
  auto bytes = machine_.take_pending_app_state(world_rank_);
  SPBC_ASSERT_MSG(!bytes.empty(), "restore_app_state with no pending state");
  util::ByteReader r(bytes);
  restore_app(r);
}

void Rank::reset_for_restart() {
  match_.clear();
  send_state_.clear();
  recv_window_.clear();
  coll_seq_.clear();
  pending_payload_.clear();
  patterns_ = PatternBook{};
  req_post_seq_ = 0;
  op_counter_ = 0;
}

Rank::Progress Rank::progress_now() const {
  Progress p;
  p.ops = op_counter_;
  if (in_compute_) {
    sim::Time elapsed = now() - compute_start_;
    p.compute_elapsed = std::clamp(elapsed, 0.0, compute_duration_);
  }
  return p;
}

void Rank::freeze_progress() {
  frozen_ = progress_now();
  has_frozen_ = true;
}

void Rank::bump_op_counter() {
  ++op_counter_;
  if (catch_up_target_.ops != 0 && op_counter_ >= catch_up_target_.ops) {
    sim::Time extra = catch_up_target_.compute_elapsed;
    catch_up_target_ = Progress{};
    has_frozen_ = false;
    if (extra > 0) {
      // The lost work ended partway through this op's compute block; the
      // rank is caught up once it has redone that partial slice.
      int r = world_rank_;
      Machine* m = &machine_;
      machine_.engine().after(extra, [m, r] { m->note_catch_up(r); });
    } else {
      machine_.note_catch_up(world_rank_);
    }
  }
}

void Rank::block_until(const std::function<bool()>& pred, const char* site) {
  if (!pred()) set_block_site(site);
  while (!pred()) {
    machine_.engine().park();
  }
}

void Rank::wake() {
  if (task_ == sim::Engine::kInvalidTask) return;
  machine_.engine().unpark(task_);
}


}  // namespace spbc::mpi

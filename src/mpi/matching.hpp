#pragma once
// The matching engine: posted-request and unexpected-message queues with
// MPICH-like semantics (Figure 1 of the paper).
//
// A reception request is matched with the first arrived message whose
// metadata matches (src or ANY_SOURCE, tag or ANY_TAG, communicator), in
// envelope-arrival order; an arriving envelope is matched against posted
// requests in post order. When the protocol enables id-based matching
// (Section 4.3 / 5.2.1), the predicate additionally requires equal
// (pattern_id, iteration_id) tuples — this single extra comparison is the
// entire A -> A' mechanism.
//
// Rendezvous messages enter the queues at RTS time (matching happens on the
// first packet, as in MPICH); their payload completes later.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "util/serialize.hpp"

namespace spbc::mpi {

/// An arrived-but-unmatched message (eager: payload present; rendezvous:
/// envelope only until the payload transfer completes).
struct UnexpectedMsg {
  Envelope env;
  Payload payload;
  bool payload_ready = false;   // false for pending rendezvous
  uint64_t sender_req = 0;      // rendezvous correlation id
};

class MatchEngine {
 public:
  /// Matching predicate per the paper: src/tag/comm always; pattern ids when
  /// `match_pattern_ids` is set.
  static bool matches(const RequestState& req, const Envelope& env,
                      bool match_pattern_ids);

  void set_match_pattern_ids(bool v) { match_pattern_ids_ = v; }
  bool match_pattern_ids() const { return match_pattern_ids_; }

  /// An envelope arrived. If a posted request matches, it is removed from the
  /// posted queue and returned (payload is left with the caller); otherwise
  /// the payload is moved into the unexpected queue and nullptr is returned.
  std::shared_ptr<RequestState> on_envelope(const Envelope& env, Payload& payload,
                                            bool payload_ready, uint64_t sender_req);

  /// A reception request is posted. If an unexpected message matches, it is
  /// removed from the unexpected queue and returned (engaged); otherwise the
  /// request joins the posted queue.
  struct PostResult {
    bool matched = false;
    UnexpectedMsg msg;  // valid when matched
  };
  PostResult on_post(std::shared_ptr<RequestState> req);

  /// MPI_Iprobe: peeks the first matching unexpected message without
  /// removing it.
  bool iprobe(const RequestState& probe_req, Status* status) const;

  /// Recovery: re-inserts a request into the posted queue at its post-order
  /// position WITHOUT scanning the unexpected queue. Used when a matched-
  /// but-incomplete rendezvous is rewound after the sender crashed: the
  /// request must wait for the replay of the message it had matched, not
  /// grab a newer unexpected message from the same channel.
  void repost(std::shared_ptr<RequestState> req);

  /// Recovery: removes and returns the unexpected message a bound (rewound)
  /// request matches, if its re-delivery already arrived.
  PostResult take_bound(const RequestState& req);

  /// Recovery: drops unexpected rendezvous envelopes from `src` whose
  /// payload has not arrived. Their transport state died with the sender's
  /// old incarnation; a later request matching one would CTS into the void.
  /// Per-channel FIFO puts the peer's Rollback ahead of any of its new
  /// messages, so at Rollback time every pending RTS from it is stale.
  /// Returns the number purged.
  size_t purge_pending_rts_from(int src);
  /// Batched purge over every source satisfying `pred` in one queue pass.
  size_t purge_pending_rts_if(const std::function<bool(int)>& pred);

  /// A rendezvous payload completed for an unexpected (still unmatched)
  /// message; marks it ready. Returns false if no such entry exists (it was
  /// already matched — the caller then completes the matched request).
  bool complete_unexpected_payload(uint64_t sender_req, int src, Payload payload);

  /// Recovery: a full copy of a message whose rendezvous RTS is still queued
  /// unmatched arrived (replay or re-execution overlapping an in-flight
  /// handshake during overlapping recoveries). Merges the payload into the
  /// queued entry in place — keeping its arrival-order position and avoiding
  /// a duplicate queue entry — and returns the entry's original sender_req
  /// through `stale_req` so the caller can release the sender with a
  /// discard-CTS. Returns false if no such pending entry exists.
  bool adopt_pending_rts(const Envelope& env, Payload& payload,
                         uint64_t* stale_req);

  /// Cancels a posted request (removes it from the posted queue).
  void cancel_posted(const RequestState* req);

  const std::deque<UnexpectedMsg>& unexpected() const { return unexpected_; }
  size_t posted_count() const { return posted_.size(); }

  /// Checkpoint support. Only payload-ready unexpected messages are
  /// serialized: a pending-rendezvous envelope has no payload to save, and
  /// on recovery the sender will replay or regenerate the full message
  /// because its seqnum is absent from the receiver's received-window.
  void serialize(util::ByteWriter& w) const;
  void restore(util::ByteReader& r);

  /// Recovery support: drops all posted requests and unexpected messages
  /// (used when a rank is rolled back; state comes back via restore()).
  void clear();

 private:
  std::vector<std::shared_ptr<RequestState>> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  bool match_pattern_ids_ = false;
};

}  // namespace spbc::mpi

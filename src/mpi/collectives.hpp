#pragma once
// Collective operations implemented over point-to-point communication.
//
// The paper assumes collectives are layered on p2p (Section 3.2), which means
// their messages traverse the same channels and are logged/replayed like any
// other message. All algorithms here use named sources only, so they can
// never mismatch during recovery (Theorem 1), and they are deterministic
// given the communicator — preserving channel-determinism.
//
// Algorithms: dissemination barrier, binomial-tree bcast/reduce,
// reduce+bcast allreduce, ring allgather, pairwise alltoall. Each collective
// instance gets a fresh tag from a per-communicator sequence so that
// overlapping collectives on the same communicator cannot interfere.

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rank.hpp"

namespace spbc::mpi {

enum class ReduceOp { kSum, kMax, kMin };

/// Dissemination barrier: ceil(log2(n)) rounds of named sends.
void barrier(Rank& self, const Comm& comm);

/// Binomial-tree broadcast of `data` from `root` (comm rank).
void bcast(Rank& self, std::vector<double>& data, int root, const Comm& comm);

/// Binomial-tree reduction to `root`; `data` is replaced by the reduced
/// vector at the root and left partially reduced elsewhere.
void reduce(Rank& self, std::vector<double>& data, ReduceOp op, int root,
            const Comm& comm);

/// reduce-to-0 + bcast allreduce (deterministic reduction order).
void allreduce(Rank& self, std::vector<double>& data, ReduceOp op, const Comm& comm);

/// Convenience scalar allreduce.
double allreduce_scalar(Rank& self, double value, ReduceOp op, const Comm& comm);

/// Ring allgather: each rank contributes `mine`; returns all contributions
/// indexed by comm rank.
std::vector<std::vector<double>> allgather(Rank& self, const std::vector<double>& mine,
                                           const Comm& comm);

/// Pairwise-exchange alltoall of fixed-size double blocks. `send[i]` goes to
/// comm rank i; returns blocks received from every rank.
std::vector<std::vector<double>> alltoall(Rank& self,
                                          const std::vector<std::vector<double>>& send,
                                          const Comm& comm);

/// Communicator split (collective over parent): ranks with equal `color`
/// form a sub-communicator ordered by (key, parent rank). Color < 0 yields
/// an invalid (size-0 sentinel) membership — the rank is in no output comm.
Comm comm_split(Rank& self, const Comm& parent, int color, int key);

/// Communicator duplication (collective): same group, fresh context id.
Comm comm_dup(Rank& self, const Comm& parent);

}  // namespace spbc::mpi

#include "mpi/collectives.hpp"

#include <algorithm>
#include <tuple>

#include "util/assert.hpp"

namespace spbc::mpi {

namespace {

int coll_tag(Rank& self, const Comm& comm) {
  // Per-communicator collective sequence; identical on all members because
  // collectives are called in the same order on every rank (SPMD).
  uint64_t seq = self.next_collective_seq(comm.ctx());
  return kCollectiveTagBase + static_cast<int>(seq % (1 << 22));
}

void apply_op(std::vector<double>& acc, const std::vector<double>& in, ReduceOp op) {
  SPBC_ASSERT(acc.size() == in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMax:
      for (size_t i = 0; i < acc.size(); ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (size_t i = 0; i < acc.size(); ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

}  // namespace

void barrier(Rank& self, const Comm& comm) {
  int n = comm.size();
  if (n == 1) return;
  int me = comm.comm_rank(self.rank());
  SPBC_ASSERT_MSG(me >= 0, "barrier on a communicator not containing this rank");
  int tag = coll_tag(self, comm);
  for (int dist = 1; dist < n; dist <<= 1) {
    int to = (me + dist) % n;
    int from = (me - dist % n + n) % n;
    Request r = self.irecv(from, tag, comm);
    self.send(to, tag, Payload::make_synthetic(8, 0), comm);
    self.wait(r);
  }
}

void bcast(Rank& self, std::vector<double>& data, int root, const Comm& comm) {
  int n = comm.size();
  if (n == 1) return;
  int me = comm.comm_rank(self.rank());
  SPBC_ASSERT(me >= 0);
  int tag = coll_tag(self, comm);
  // Rotate so the root is virtual rank 0.
  int vme = (me - root + n) % n;
  // Receive from parent.
  if (vme != 0) {
    int mask = 1;
    while (mask < n && (vme & mask) == 0) mask <<= 1;
    int vparent = vme & ~mask;
    int parent = (vparent + root) % n;
    RecvResult rr = self.recv(parent, tag, comm);
    rr.copy_to(data);
  }
  // Forward to children.
  int mask = 1;
  while (mask < n && (vme & mask) == 0) mask <<= 1;
  for (int m = mask >> 1; m >= 1; m >>= 1) {
    int vchild = vme | m;
    if (vchild < n && vchild != vme) {
      int child = (vchild + root) % n;
      self.send(child, tag, Payload::from_vector(data), comm);
    }
  }
}

void reduce(Rank& self, std::vector<double>& data, ReduceOp op, int root,
            const Comm& comm) {
  int n = comm.size();
  if (n == 1) return;
  int me = comm.comm_rank(self.rank());
  SPBC_ASSERT(me >= 0);
  int tag = coll_tag(self, comm);
  int vme = (me - root + n) % n;
  // Binomial gather: children send partial results up the tree; reduction
  // order is fixed by the tree shape, so results are bit-deterministic.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((vme & mask) == 0) {
      int vchild = vme | mask;
      if (vchild < n) {
        int child = (vchild + root) % n;
        RecvResult rr = self.recv(child, tag, comm);
        std::vector<double> in;
        rr.copy_to(in);
        apply_op(data, in, op);
      }
    } else {
      int vparent = vme & ~mask;
      int parent = (vparent + root) % n;
      self.send(parent, tag, Payload::from_vector(data), comm);
      break;
    }
  }
}

void allreduce(Rank& self, std::vector<double>& data, ReduceOp op, const Comm& comm) {
  reduce(self, data, op, 0, comm);
  bcast(self, data, 0, comm);
}

double allreduce_scalar(Rank& self, double value, ReduceOp op, const Comm& comm) {
  std::vector<double> v{value};
  allreduce(self, v, op, comm);
  return v[0];
}

std::vector<std::vector<double>> allgather(Rank& self, const std::vector<double>& mine,
                                           const Comm& comm) {
  int n = comm.size();
  int me = comm.comm_rank(self.rank());
  SPBC_ASSERT(me >= 0);
  std::vector<std::vector<double>> out(static_cast<size_t>(n));
  out[static_cast<size_t>(me)] = mine;
  if (n == 1) return out;
  int tag = coll_tag(self, comm);
  // Ring: in step s, send the block received in step s-1 to the right
  // neighbour; after n-1 steps everyone has everything.
  int right = (me + 1) % n;
  int left = (me - 1 + n) % n;
  int have = me;  // index of the block we forward next
  for (int s = 0; s < n - 1; ++s) {
    Request r = self.irecv(left, tag, comm);
    self.send(right, tag, Payload::from_vector(out[static_cast<size_t>(have)]), comm);
    self.wait(r);
    have = (have - 1 + n) % n;
    r.result().copy_to(out[static_cast<size_t>(have)]);
  }
  return out;
}

std::vector<std::vector<double>> alltoall(Rank& self,
                                          const std::vector<std::vector<double>>& send,
                                          const Comm& comm) {
  int n = comm.size();
  SPBC_ASSERT(static_cast<int>(send.size()) == n);
  int me = comm.comm_rank(self.rank());
  SPBC_ASSERT(me >= 0);
  std::vector<std::vector<double>> out(static_cast<size_t>(n));
  out[static_cast<size_t>(me)] = send[static_cast<size_t>(me)];
  if (n == 1) return out;
  int tag = coll_tag(self, comm);
  // Pairwise exchange: in round r, exchange with (me XOR r) when a power-of-
  // two group applies, otherwise with the shifted partner. The shifted
  // scheme works for any n and is deterministic.
  for (int r = 1; r < n; ++r) {
    int to = (me + r) % n;
    int from = (me - r + n) % n;
    Request rq = self.irecv(from, tag, comm);
    self.send(to, tag, Payload::from_vector(send[static_cast<size_t>(to)]), comm);
    self.wait(rq);
    rq.result().copy_to(out[static_cast<size_t>(from)]);
  }
  return out;
}

Comm comm_split(Rank& self, const Comm& parent, int color, int key) {
  int n = parent.size();
  int me = parent.comm_rank(self.rank());
  SPBC_ASSERT(me >= 0);
  // Allgather (color, key) over the parent; every member computes the same
  // grouping locally — the same agreement a real MPI_Comm_split performs.
  std::vector<double> mine{static_cast<double>(color), static_cast<double>(key)};
  auto all = allgather(self, mine, parent);

  // Context ids must be globally consistent: derive from the parent ctx and
  // the parent's collective sequence (identical on all members), spaced so
  // sibling sub-communicators (distinct colors) get distinct ctx ids.
  uint64_t seq = self.next_collective_seq(parent.ctx());

  if (color < 0) return Comm(-1, {self.rank()});  // "undefined" color sentinel

  std::vector<std::tuple<int, int, int>> members;  // (key, parent_rank, world)
  std::vector<int> colors_seen;
  for (int r = 0; r < n; ++r) {
    int c = static_cast<int>(all[static_cast<size_t>(r)][0]);
    if (c >= 0 &&
        std::find(colors_seen.begin(), colors_seen.end(), c) == colors_seen.end())
      colors_seen.push_back(c);
    if (c == color)
      members.emplace_back(static_cast<int>(all[static_cast<size_t>(r)][1]), r,
                           parent.world_rank(r));
  }
  std::sort(members.begin(), members.end());
  std::vector<int> group;
  group.reserve(members.size());
  for (const auto& [k, pr, wr] : members) group.push_back(wr);

  std::sort(colors_seen.begin(), colors_seen.end());
  auto cit = std::find(colors_seen.begin(), colors_seen.end(), color);
  int color_index = static_cast<int>(cit - colors_seen.begin());

  int ctx = parent.ctx() * 4096 + static_cast<int>(seq % 64) * 64 + color_index + 1;
  return Comm(ctx, std::move(group));
}

Comm comm_dup(Rank& self, const Comm& parent) {
  // Agreement on the new ctx comes from the shared collective sequence; a
  // barrier keeps the collective semantics (all members must call dup).
  barrier(self, parent);
  uint64_t seq = self.next_collective_seq(parent.ctx());
  int ctx = parent.ctx() * 4096 + static_cast<int>(seq % 64) * 64 + 63;
  return Comm(ctx, parent.group());
}

}  // namespace spbc::mpi

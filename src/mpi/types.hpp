#pragma once
// Core message-passing types shared by the simmpi runtime and the SPBC
// protocol layer.
//
// A message is identified — exactly as in Section 3.3 of the paper — by the
// tuple {src, dst, comm, seqnum} plus its payload; the protocol additionally
// stamps a (pattern_id, iteration_id) tuple used by the id-based matching of
// Section 4.3.

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace spbc::mpi {

/// Wildcards (match the MPI standard's semantics).
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Tag values at or above this base are reserved for internal collectives.
constexpr int kCollectiveTagBase = 1 << 24;

/// Pattern identifier attached to every message and reception request
/// (Section 5.2.1). Applications outside a declared pattern use the default
/// pattern {0, 0}, whose iteration never advances.
struct PatternTag {
  uint32_t pattern = 0;
  uint32_t iteration = 0;

  bool operator==(const PatternTag&) const = default;
};

/// Message payload. Workloads can attach real bytes (used by correctness
/// tests to validate end-to-end content) or run "synthetic": size + an
/// app-provided content hash, with no actual allocation. Both modes exercise
/// identical protocol paths; logging costs are charged on `bytes` either way.
struct Payload {
  uint64_t bytes = 0;
  uint64_t hash = 0;
  std::vector<unsigned char> data;  // empty in synthetic mode

  bool synthetic() const { return data.empty() && bytes > 0; }

  static Payload from_bytes(const void* p, uint64_t n) {
    Payload pl;
    pl.bytes = n;
    pl.data.resize(n);
    if (n) std::memcpy(pl.data.data(), p, n);
    util::Fnv1a64 h;
    h.update(p, n);
    pl.hash = h.digest();
    return pl;
  }

  template <typename T>
  static Payload from_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return from_bytes(v.data(), v.size() * sizeof(T));
  }

  static Payload make_synthetic(uint64_t bytes, uint64_t hash) {
    Payload pl;
    pl.bytes = bytes;
    pl.hash = hash;
    return pl;
  }
};

/// Message envelope (metadata). `seqnum` is the per-channel sequence number
/// of Section 3.3: the channel is the (src, dst, comm) triple.
struct Envelope {
  int src = -1;  // world rank of sender
  int dst = -1;  // world rank of destination
  int tag = 0;
  int ctx = 0;  // communicator context id
  uint64_t seqnum = 0;
  PatternTag pid;
  uint64_t bytes = 0;
  uint64_t hash = 0;
  uint64_t uid = 0;       // globally unique id (tracing/debug)
  uint64_t lclock = 0;    // Lamport clock (piggybacked; used by the HydEE
                          // baseline to order its centralized replay)
  uint64_t ckpt_epoch = 0;  // sender's checkpoint epoch at send time — the
                            // piggybacked marker of the non-blocking
                            // intra-cluster checkpoint wave (see DESIGN.md)
  bool replayed = false;  // re-sent from a sender log during recovery
};

/// Status returned by probe/recv operations.
struct Status {
  int source = -1;
  int tag = -1;
  uint64_t bytes = 0;
};

/// Result of a completed reception.
struct RecvResult {
  int source = -1;
  int tag = -1;
  uint64_t bytes = 0;
  uint64_t hash = 0;
  std::vector<unsigned char> data;  // empty in synthetic mode

  template <typename T>
  void copy_to(std::vector<T>& out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    SPBC_ASSERT_MSG(!data.empty() || bytes == 0,
                    "copy_to on synthetic payload (" << bytes << " bytes)");
    out.resize(bytes / sizeof(T));
    if (bytes) std::memcpy(out.data(), data.data(), bytes);
  }
};

/// Identifies one directed channel in the context of a communicator.
struct ChannelKey {
  int src = -1;
  int dst = -1;
  int ctx = 0;

  auto operator<=>(const ChannelKey&) const = default;
};

/// The set of sequence numbers received on one channel, maintained as a
/// contiguous prefix plus a sparse overflow set. The sparse part is non-empty
/// only while a rendezvous payload is outstanding behind newer eager
/// messages. This generalizes Algorithm 1's scalar `LR`: recovery replays
/// exactly the complement of this set, which stays correct even when
/// reception completion is reordered within a channel (footnote 1 of the
/// paper).
class SeqWindow {
 public:
  void add(uint64_t seq) {
    SPBC_ASSERT_MSG(!contains(seq), "duplicate add of seq " << seq);
    if (seq == base_ + 1) {
      ++base_;
      // Absorb any sparse entries that became contiguous.
      auto it = sparse_.begin();
      while (it != sparse_.end() && *it == base_ + 1) {
        ++base_;
        it = sparse_.erase(it);
      }
    } else {
      sparse_.insert(seq);
    }
  }

  bool contains(uint64_t seq) const {
    return seq <= base_ || sparse_.count(seq) > 0;
  }

  /// All sequence numbers <= base() are received (no gaps).
  uint64_t base() const { return base_; }

  const std::set<uint64_t>& sparse() const { return sparse_; }

  void serialize(util::ByteWriter& w) const {
    w.put<uint64_t>(base_);
    w.put<uint64_t>(sparse_.size());
    for (uint64_t s : sparse_) w.put<uint64_t>(s);
  }

  static SeqWindow deserialize(util::ByteReader& r) {
    SeqWindow win;
    win.base_ = r.get<uint64_t>();
    auto n = r.get<uint64_t>();
    for (uint64_t i = 0; i < n; ++i) win.sparse_.insert(r.get<uint64_t>());
    return win;
  }

  /// Encodes into a flat vector (for control-message payloads).
  void encode(std::vector<uint64_t>& out) const {
    out.push_back(base_);
    out.push_back(sparse_.size());
    for (uint64_t s : sparse_) out.push_back(s);
  }

  static SeqWindow decode(const std::vector<uint64_t>& in, size_t& pos) {
    SeqWindow win;
    win.base_ = in.at(pos++);
    uint64_t n = in.at(pos++);
    for (uint64_t i = 0; i < n; ++i) win.sparse_.insert(in.at(pos++));
    return win;
  }

  bool operator==(const SeqWindow&) const = default;

 private:
  uint64_t base_ = 0;
  std::set<uint64_t> sparse_;
};

/// Protocol-level control messages (out of band with respect to application
/// matching, but transported through the same network channels, so they obey
/// per-channel FIFO relative to data — Algorithm 1 sends Rollback "on cij").
struct ControlMsg {
  enum class Kind : uint8_t {
    kRts,          // rendezvous request-to-send (transport)
    kCts,          // rendezvous clear-to-send (transport)
    kRollback,     // Algorithm 1: recovering rank announces received windows
    kLastMessage,  // Algorithm 1: peer reports what it already received
    kClusterRollback,  // aggregated Rollback (MachineConfig::
                       // aggregate_rollbacks): the recovering cluster's
                       // leader announces every member's restored windows
                       // in ONE message per outside rank — O(world) control
                       // messages per failure instead of the pairwise
                       // broadcast's O(cluster x world)
    kCkptMarker,    // marker-based wave: "I snapshotted epoch E"; data
                    // messages piggyback the same information as an epoch
                    // stamp, so members never park waiting for it
    kCkptComplete,  // member -> wave root: snapshot written and every
                    // pre-cut intra-cluster send has landed
    kCkptCommit,    // root -> members: all members completed epoch E; the
                    // wave's async completion reduction
    kReplayGrantRequest,  // HydEE: ask coordinator for permission to replay
    kReplayGrant,         // HydEE: coordinator grants one replay
    kReplayAck,           // HydEE: replayed message delivered
  };

  Kind kind = Kind::kRts;
  int src = -1;
  int dst = -1;
  Envelope env;                 // for kRts/kCts: the rendezvous envelope
  uint64_t sender_req = 0;      // rendezvous request correlation id
  std::vector<uint64_t> words;  // kind-specific payload
};

}  // namespace spbc::mpi

#pragma once
// Communicators. A channel exists per ordered pair of processes *per
// communicator* (Section 3.2), so the context id participates in channel
// identity and matching.

#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace spbc::mpi {

class Comm {
 public:
  /// World communicator over ranks [0, nranks).
  static Comm world(int nranks);

  /// Sub-communicator with explicit membership (world ranks, comm rank i is
  /// group[i]).
  Comm(int ctx, std::vector<int> group);

  int ctx() const { return ctx_; }
  int size() const { return static_cast<int>(group_->size()); }

  /// Translates a communicator rank to a world rank.
  int world_rank(int comm_rank) const {
    SPBC_ASSERT(comm_rank >= 0 && comm_rank < size());
    return (*group_)[comm_rank];
  }

  /// Translates a world rank to this communicator's rank, or -1 if absent.
  int comm_rank(int world_rank) const;

  bool contains(int world_rank) const { return comm_rank(world_rank) >= 0; }

  const std::vector<int>& group() const { return *group_; }

 private:
  int ctx_;
  std::shared_ptr<const std::vector<int>> group_;
};

/// Communication-free communicator split for SPMD codes whose (color, key)
/// assignment is a pure function of the world rank. Unlike comm_split()
/// (which allgathers and is therefore a collective), this variant performs
/// no communication and consumes no collective sequence numbers — which
/// makes it safe to re-execute during a partial restart, where the failed
/// cluster re-runs its main but the survivors do not. `salt` disambiguates
/// multiple splits of the same parent.
Comm comm_split_pure(const Comm& parent, int me_world, int salt,
                     int (*color_of)(int world_rank, const void* arg),
                     int (*key_of)(int world_rank, const void* arg), const void* arg);

}  // namespace spbc::mpi

#include "mpi/comm.hpp"

#include <algorithm>
#include <numeric>

namespace spbc::mpi {

Comm Comm::world(int nranks) {
  std::vector<int> g(static_cast<size_t>(nranks));
  std::iota(g.begin(), g.end(), 0);
  return Comm(0, std::move(g));
}

Comm::Comm(int ctx, std::vector<int> group)
    : ctx_(ctx), group_(std::make_shared<const std::vector<int>>(std::move(group))) {
  SPBC_ASSERT(!group_->empty());
}

int Comm::comm_rank(int world_rank) const {
  for (size_t i = 0; i < group_->size(); ++i)
    if ((*group_)[i] == world_rank) return static_cast<int>(i);
  return -1;
}

Comm comm_split_pure(const Comm& parent, int me_world, int salt,
                     int (*color_of)(int world_rank, const void* arg),
                     int (*key_of)(int world_rank, const void* arg), const void* arg) {
  int my_color = color_of(me_world, arg);
  SPBC_ASSERT_MSG(my_color >= 0, "comm_split_pure requires non-negative colors");
  std::vector<std::pair<int, int>> members;  // (key, world rank)
  for (int cr = 0; cr < parent.size(); ++cr) {
    int wr = parent.world_rank(cr);
    if (color_of(wr, arg) == my_color) members.emplace_back(key_of(wr, arg), wr);
  }
  std::sort(members.begin(), members.end());
  std::vector<int> group;
  group.reserve(members.size());
  for (const auto& [k, wr] : members) group.push_back(wr);
  // Deterministic context id: identical on every member, stable across
  // restarts, distinct per (parent, salt, color).
  uint64_t mix = 0x9e3779b97f4a7c15ULL;
  mix ^= static_cast<uint64_t>(parent.ctx()) * 0xbf58476d1ce4e5b9ULL;
  mix ^= static_cast<uint64_t>(salt) * 0x94d049bb133111ebULL;
  mix ^= static_cast<uint64_t>(my_color) * 0xd6e8feb86659fd93ULL;
  int ctx = static_cast<int>((mix % 0x3fffffff) + 1000);
  return Comm(ctx, std::move(group));
}

}  // namespace spbc::mpi

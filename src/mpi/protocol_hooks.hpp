#pragma once
// Interface between the simmpi runtime and a fault-tolerance protocol.
//
// The runtime calls these hooks at the points where a real implementation
// would instrument the MPI library (Section 5.2): on the send path (payload
// logging), on delivery (received-window bookkeeping), in the matching
// predicate (id-based matching), at checkpoint requests, and on control
// messages. Protocol implementations: core::SpbcProtocol, the baselines
// (global coordinated, HydEE), and a no-op NativeProtocol standing in for
// unmodified MPICH.

#include <cstdint>

#include "mpi/types.hpp"
#include "sim/time.hpp"

namespace spbc::mpi {

class Rank;
class Machine;

/// What a failure injection destroys besides the victim cluster's processes.
enum class FailureKind : uint8_t {
  kNodeLoss,     // the node dies: processes AND node-local storage are lost
  kProcessOnly,  // the processes die; node-local storage survives restart
  /// The node dies and never returns: storage is lost AND the node leaves
  /// service. Elastic recovery rebinds its resident ranks to a hot spare
  /// (or re-packs them onto survivors when the pool is empty) instead of
  /// restarting on the dead hardware.
  kNodePermanent,
};

class ProtocolHooks {
 public:
  virtual ~ProtocolHooks() = default;

  /// Called once after the Machine wired up all ranks.
  virtual void attach(Machine& machine) = 0;

  /// Called when the Machine learns the cluster decomposition
  /// (set_cluster_of), before any traffic flows. Protocols pre-size
  /// per-cluster state here instead of lazily inserting into shared maps —
  /// lazy insertion from concurrent shard events is a structural race under
  /// the threaded executor.
  virtual void on_cluster_map(int /*nclusters*/) {}

  /// Sender-side stamping of protocol metadata onto the envelope, called
  /// right after seqnum assignment and before on_send. SPBC piggybacks its
  /// checkpoint-epoch marker here: intra-cluster messages carry the sender's
  /// current epoch so receivers can classify traffic that crosses a
  /// checkpoint cut without any blocking coordination.
  virtual void stamp_envelope(Rank& /*sender*/, Envelope& /*env*/) {}

  /// Send path, called from the sender's fiber after seqnum assignment and
  /// before any transport activity. Returns the virtual-time cost to charge
  /// to the sender (payload logging memcpy etc.).
  virtual sim::Time on_send(Rank& sender, const Envelope& env,
                            const Payload& payload) = 0;

  /// Should this send actually reach the network? False when the peer
  /// already holds this seqnum (LS suppression during recovery).
  virtual bool should_transmit(Rank& sender, const Envelope& env) = 0;

  /// Delivery path at the destination's MPI layer (event context), after the
  /// received-window was updated and before matching. The payload is the
  /// delivered message content; SPBC's marker-based wave copies it into the
  /// per-epoch in-flight capture when the message crossed a checkpoint cut.
  virtual void on_delivered(Rank& receiver, const Envelope& env,
                            const Payload& payload) = 0;

  /// A message was matched to (and completed) a reception request — the
  /// application has consumed it. HydEE's coordinator model acknowledges
  /// replayed messages here: consumption is what proves the dependencies of
  /// the next replay are satisfied.
  virtual void on_matched(Rank& /*receiver*/, const Envelope& /*env*/) {}

  /// True if the matching predicate must also compare pattern ids
  /// (the A -> A' transformation of Section 4.3).
  virtual bool pattern_matching_enabled() const = 0;

  /// The application reached a checkpoint opportunity (iteration boundary).
  /// Blocking; called from the rank's fiber. Returns true if a checkpoint
  /// was taken.
  virtual bool maybe_checkpoint(Rank& rank) = 0;

  /// A failure was injected into the machine: the crash instant (serial
  /// context), before any process is killed and before the detection delay
  /// runs. Exactly one call per injected failure event — the feed for
  /// online failure-rate estimators. `kind` says whether the victim's node
  /// storage died with the processes.
  virtual void on_failure_injected(int /*victim_rank*/, FailureKind /*kind*/) {
  }

  /// A failure was detected; `victim` identifies the crashed rank. Called in
  /// event context once per failure event, on the Machine's behalf.
  virtual void on_failure(int victim_rank) = 0;

  /// A rank's process just died (crash instant or detection-time cluster
  /// kill — before on_failure's recovery orchestration). Storage-aware
  /// protocols invalidate the dead node's checkpoint copies here: LOCAL
  /// snapshots and hosted PARTNER copies do not survive the node.
  virtual void on_rank_killed(int /*rank*/) {}

  /// Protocol-level control message arrived at `receiver` (event context).
  virtual void on_control(Rank& receiver, const ControlMsg& msg) = 0;

  /// Called when a rank's fiber is (re)started, before the application main
  /// runs — recovery protocols send their Rollback announcements here.
  virtual void on_rank_start(Rank& rank, bool restarted) = 0;
};

/// Stand-in for the unmodified MPI library: no logging, no containment.
class NativeProtocol final : public ProtocolHooks {
 public:
  void attach(Machine&) override {}
  sim::Time on_send(Rank&, const Envelope&, const Payload&) override { return 0.0; }
  bool should_transmit(Rank&, const Envelope&) override { return true; }
  void on_delivered(Rank&, const Envelope&, const Payload&) override {}
  bool pattern_matching_enabled() const override { return false; }
  bool maybe_checkpoint(Rank&) override { return false; }
  void on_failure(int) override {}
  void on_control(Rank&, const ControlMsg&) override {}
  void on_rank_start(Rank&, bool) override {}
};

}  // namespace spbc::mpi
